// Micro-benchmarks (google-benchmark): the cost of the rewriting pipeline
// itself (it runs at optimization time, so it must be cheap relative to
// query execution) and of the core evaluation primitives.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <unordered_map>

#include "algebra/path_parser.h"
#include "eval/naive_reference.h"
#include "util/exec_context.h"
#include "util/flat_hash.h"
#include "util/radix.h"
#include "util/thread_pool.h"
#include "api/database.h"
#include "api/server.h"
#include "api/stages.h"  // white-box: stage-isolating micro-benchmarks
#include "core/simplifier.h"
#include "core/type_inference.h"
#include "datasets/ldbc.h"
#include "datasets/workloads.h"
#include "datasets/yago.h"
#include "eval/binary_relation.h"
#include "eval/graph_engine.h"
#include "query/query_parser.h"
#include "ra/catalog.h"
#include "util/rng.h"

namespace gqopt {
namespace {

void BM_RewriteYagoWorkload(benchmark::State& state) {
  GraphSchema schema = YagoSchema();
  std::vector<Ucqt> queries;
  for (const WorkloadQuery& wq : YagoWorkload()) {
    queries.push_back(*ParseWorkloadQuery(wq));
  }
  for (auto _ : state) {
    for (const Ucqt& query : queries) {
      benchmark::DoNotOptimize(RewriteQuery(query, schema));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_RewriteYagoWorkload);

void BM_RewriteLdbcWorkload(benchmark::State& state) {
  GraphSchema schema = LdbcSchema();
  std::vector<Ucqt> queries;
  for (const WorkloadQuery& wq : LdbcWorkload()) {
    queries.push_back(*ParseWorkloadQuery(wq));
  }
  for (auto _ : state) {
    for (const Ucqt& query : queries) {
      benchmark::DoNotOptimize(RewriteQuery(query, schema));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_RewriteLdbcWorkload);

void BM_InferenceClosure(benchmark::State& state) {
  GraphSchema schema = YagoSchema();
  PathExprPtr expr = *ParsePathExpr("owns/isLocatedIn+/dealsWith+");
  for (auto _ : state) {
    benchmark::DoNotOptimize(InferTriples(expr, schema));
  }
}
BENCHMARK(BM_InferenceClosure);

void BM_SimplifyFig7(benchmark::State& state) {
  PathExprPtr expr = *ParsePathExpr(
      "(((owns[isMarriedTo+/livesIn/dealsWith+])/(isLocatedIn+)+)+)+");
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimplifyPath(expr));
  }
}
BENCHMARK(BM_SimplifyFig7);

void BM_ParseWorkloadQueries(benchmark::State& state) {
  for (auto _ : state) {
    for (const WorkloadQuery& wq : LdbcWorkload()) {
      benchmark::DoNotOptimize(ParseWorkloadQuery(wq));
    }
  }
}
BENCHMARK(BM_ParseWorkloadQueries);

BinaryRelation RandomRelation(size_t nodes, size_t edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> pairs;
  pairs.reserve(edges);
  for (size_t i = 0; i < edges; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(nodes)),
                       static_cast<NodeId>(rng.Uniform(nodes)));
  }
  return BinaryRelation::FromPairs(std::move(pairs));
}

void BM_Compose(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  BinaryRelation a = RandomRelation(n, n * 4, 1);
  BinaryRelation b = RandomRelation(n, n * 4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BinaryRelation::Compose(a, b));
  }
}
BENCHMARK(BM_Compose)->Arg(1000)->Arg(10000);

void BM_TransitiveClosureChain(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Edge> pairs;
  for (NodeId i = 0; i + 1 < n; ++i) pairs.push_back({i, i + 1});
  BinaryRelation chain = BinaryRelation::FromPairs(std::move(pairs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BinaryRelation::TransitiveClosure(chain));
  }
}
BENCHMARK(BM_TransitiveClosureChain)->Arg(64)->Arg(256);

// The BM_Naive* / BM_Seed* benchmarks below run the retained pre-CSR
// algorithms (eval/naive_reference.h, or inlined where noted) on the same
// inputs as their optimized counterparts, so one bench run yields
// machine-drift-free before/after ratios.

void BM_NaiveCompose(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  BinaryRelation a = RandomRelation(n, n * 4, 1);
  BinaryRelation b = RandomRelation(n, n * 4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive::Compose(a, b));
  }
}
BENCHMARK(BM_NaiveCompose)->Arg(1000)->Arg(10000);

void BM_TransitiveClosureRandom(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  BinaryRelation r = RandomRelation(n, n * 2, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BinaryRelation::TransitiveClosure(r));
  }
}
BENCHMARK(BM_TransitiveClosureRandom)->Arg(512)->Arg(1024);

void BM_NaiveTransitiveClosureRandom(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  BinaryRelation r = RandomRelation(n, n * 2, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive::TransitiveClosure(r));
  }
}
BENCHMARK(BM_NaiveTransitiveClosureRandom)->Arg(512)->Arg(1024);

void BM_SemiJoinSource(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  BinaryRelation r = RandomRelation(n, n * 4, 11);
  Rng rng(13);
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < n / 4; ++i) {
    nodes.push_back(static_cast<NodeId>(rng.Uniform(n)));
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.SemiJoinSource(nodes));
    benchmark::DoNotOptimize(r.SemiJoinTarget(nodes));
  }
}
BENCHMARK(BM_SemiJoinSource)->Arg(10000)->Arg(100000);

void BM_NaiveSemiJoinSource(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  BinaryRelation r = RandomRelation(n, n * 4, 11);
  Rng rng(13);
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < n / 4; ++i) {
    nodes.push_back(static_cast<NodeId>(rng.Uniform(n)));
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive::SemiJoinSource(r, nodes));
    benchmark::DoNotOptimize(naive::SemiJoinTarget(r, nodes));
  }
}
BENCHMARK(BM_NaiveSemiJoinSource)->Arg(10000)->Arg(100000);

// Random two-edge-label graph for executor-level join benchmarks; a small
// SEED-labelled node population drives the seeded-closure bench.
PropertyGraph RandomJoinGraph(size_t nodes, size_t edges_per_label) {
  Rng rng(17);
  PropertyGraph graph;
  for (size_t i = 0; i < nodes; ++i) {
    graph.AddNode(i % 64 == 0 ? "SEED" : "N");
  }
  for (size_t i = 0; i < edges_per_label; ++i) {
    (void)graph.AddEdge(static_cast<NodeId>(rng.Uniform(nodes)), "e1",
                        static_cast<NodeId>(rng.Uniform(nodes)));
    (void)graph.AddEdge(static_cast<NodeId>(rng.Uniform(nodes)), "e2",
                        static_cast<NodeId>(rng.Uniform(nodes)));
  }
  return graph;
}

void BM_ExecHashJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph graph = RandomJoinGraph(n, n * 4);
  Catalog catalog(graph);
  RaExprPtr plan = RaExpr::Join(RaExpr::EdgeScan("e1", "x", "y"),
                                RaExpr::EdgeScan("e2", "y", "z"));
  Executor executor(catalog);
  for (auto _ : state) {
    auto result = executor.Run(plan);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExecHashJoin)->Arg(10000)->Arg(30000);

// The seed executor's hash join verbatim (std::unordered_map from packed
// key to a per-bucket row vector), on the same edge tables as
// BM_ExecHashJoin's plan.
void BM_SeedHashJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph graph = RandomJoinGraph(n, n * 4);
  Catalog catalog(graph);
  const auto& e1 = catalog.EdgeTable("e1").pairs();  // (x, y)
  const auto& e2 = catalog.EdgeTable("e2").pairs();  // (y, z)
  for (auto _ : state) {
    std::unordered_map<uint64_t, std::vector<uint32_t>> index;
    index.reserve(e1.size() * 2);
    for (size_t r = 0; r < e1.size(); ++r) {
      index[e1[r].second].push_back(static_cast<uint32_t>(r));
    }
    std::vector<NodeId> out;
    for (size_t p = 0; p < e2.size(); ++p) {
      auto it = index.find(e2[p].first);
      if (it == index.end()) continue;
      for (uint32_t b : it->second) {
        out.push_back(e1[b].first);
        out.push_back(e1[b].second);
        out.push_back(e2[p].second);
      }
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SeedHashJoin)->Arg(10000)->Arg(30000);

// The current flat-hash join on identical inputs to BM_SeedHashJoin,
// without plan/scan overhead — the like-for-like counterpart.
void BM_FlatHashJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph graph = RandomJoinGraph(n, n * 4);
  Catalog catalog(graph);
  const auto& e1 = catalog.EdgeTable("e1").pairs();
  const auto& e2 = catalog.EdgeTable("e2").pairs();
  for (auto _ : state) {
    std::vector<uint64_t> keys(e1.size());
    for (size_t r = 0; r < e1.size(); ++r) keys[r] = e1[r].second;
    FlatJoinIndex index(keys);
    std::vector<NodeId> out;
    for (size_t p = 0; p < e2.size(); ++p) {
      auto [it, end] = index.Equal(e2[p].first);
      for (; it != end; ++it) {
        out.push_back(e1[*it].first);
        out.push_back(e1[*it].second);
        out.push_back(e2[p].second);
      }
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FlatHashJoin)->Arg(10000)->Arg(30000);

// The executor's dense-offset join fast path on identical inputs: e2 is
// sorted on the join column, so an offset array replaces hashing.
void BM_OffsetJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph graph = RandomJoinGraph(n, n * 4);
  Catalog catalog(graph);
  const auto& e1 = catalog.EdgeTable("e1").pairs();
  const auto& e2 = catalog.EdgeTable("e2").pairs();
  for (auto _ : state) {
    const CsrView& csr = catalog.EdgeTable("e2").SourceCsr();
    std::vector<NodeId> out;
    for (size_t p = 0; p < e1.size(); ++p) {
      auto [lo, hi] = csr.Range(e1[p].second);
      for (uint32_t i = lo; i < hi; ++i) {
        out.push_back(e1[p].first);
        out.push_back(e1[p].second);
        out.push_back(e2[i].second);
      }
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_OffsetJoin)->Arg(10000)->Arg(30000);

// ---- Join-strategy counterparts -------------------------------------------
// Radix-partitioned vs single-table flat-hash join on identical unsorted
// two-column-key inputs (uniform or probe-skewed), and sort-merge vs hash
// on identical sorted inputs. tools/bench_diff.py pairs these entries
// within one BENCH_micro.json snapshot for machine-drift-free ratios.

struct KeyedRows {
  std::vector<NodeId> data;    // row-major (a, b, payload)
  std::vector<uint64_t> keys;  // packed (a, b) join keys, one per row
};

// `domain` is the per-component key range; domain^2 ~ rows gives ~one
// match per probe. `skew` concentrates keys on the low ids (probe side
// only in the benchmarks, so the output stays ~rows).
KeyedRows MakeKeyedRows(size_t rows, uint32_t domain, bool skew,
                        uint64_t seed) {
  Rng rng(seed);
  KeyedRows t;
  t.data.reserve(rows * 3);
  t.keys.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    uint32_t a = static_cast<uint32_t>(skew ? rng.Skewed(domain)
                                            : rng.Uniform(domain));
    uint32_t b = static_cast<uint32_t>(skew ? rng.Skewed(domain)
                                            : rng.Uniform(domain));
    t.data.push_back(a);
    t.data.push_back(b);
    t.data.push_back(static_cast<NodeId>(rng.Uniform(1u << 30)));
    t.keys.push_back((static_cast<uint64_t>(a) << 32) | b);
  }
  return t;
}

// Sorts the rows by packed key (ties in arbitrary order): merge-join input.
void SortKeyedRows(KeyedRows* t) {
  size_t rows = t->keys.size();
  std::vector<uint32_t> order(rows);
  for (uint32_t i = 0; i < rows; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [t](uint32_t x, uint32_t y) {
    return t->keys[x] < t->keys[y];
  });
  KeyedRows sorted;
  sorted.data.reserve(rows * 3);
  sorted.keys.reserve(rows);
  for (uint32_t r : order) {
    sorted.data.insert(sorted.data.end(), t->data.begin() + r * 3,
                       t->data.begin() + r * 3 + 3);
    sorted.keys.push_back(t->keys[r]);
  }
  *t = std::move(sorted);
}

uint32_t KeyDomainFor(size_t rows) {
  uint32_t domain = 1;
  while (static_cast<uint64_t>(domain) * domain < rows) domain <<= 1;
  return domain;
}

inline void EmitJoinRow(const KeyedRows& build, uint32_t b,
                        const KeyedRows& probe, uint32_t p,
                        std::vector<NodeId>* out) {
  out->push_back(build.data[b * 3]);
  out->push_back(build.data[b * 3 + 1]);
  out->push_back(build.data[b * 3 + 2]);
  out->push_back(probe.data[p * 3 + 2]);
}

void BM_JoinFlatHashMultiKey(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bool skew = state.range(1) != 0;
  uint32_t domain = KeyDomainFor(n);
  KeyedRows build = MakeKeyedRows(n, domain, false, 101);
  KeyedRows probe = MakeKeyedRows(n, domain, skew, 102);
  for (auto _ : state) {
    FlatJoinIndex index(build.keys);
    std::vector<NodeId> out;
    out.reserve(n * 4);
    for (uint32_t p = 0; p < n; ++p) {
      auto [it, end] = index.Equal(probe.keys[p]);
      for (; it != end; ++it) EmitJoinRow(build, *it, probe, p, &out);
    }
    benchmark::DoNotOptimize(out);
    state.counters["out_rows"] = static_cast<double>(out.size() / 4);
  }
}
BENCHMARK(BM_JoinFlatHashMultiKey)
    ->Args({1 << 18, 0})
    ->Args({1 << 20, 0})
    ->Args({1 << 23, 0})
    ->Args({1 << 23, 1});

void BM_JoinRadixMultiKey(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bool skew = state.range(1) != 0;
  uint32_t domain = KeyDomainFor(n);
  KeyedRows build = MakeKeyedRows(n, domain, false, 101);
  KeyedRows probe = MakeKeyedRows(n, domain, skew, 102);
  for (auto _ : state) {
    int bits = RadixBitsFor(n);
    RadixPartitions bparts, pparts;
    BuildRadixPartitions(build.keys, bits, Deadline(), &bparts,
                         build.data.data(), 3);
    BuildRadixPartitions(probe.keys, bits, Deadline(), &pparts,
                         probe.data.data(), 3);
    std::vector<NodeId> out;
    out.reserve(n * 4);
    std::vector<uint64_t> part_keys;
    for (size_t part = 0; part < bparts.partitions(); ++part) {
      uint32_t bb = bparts.offsets[part], be = bparts.offsets[part + 1];
      uint32_t pb = pparts.offsets[part], pe = pparts.offsets[part + 1];
      if (bb == be || pb == pe) continue;
      part_keys.resize(be - bb);
      for (uint32_t i = bb; i < be; ++i) {
        const NodeId* brow = bparts.Row(i);
        part_keys[i - bb] = (static_cast<uint64_t>(brow[0]) << 32) | brow[1];
      }
      FlatJoinIndex index(part_keys.data(), part_keys.size());
      for (uint32_t p = pb; p < pe; ++p) {
        const NodeId* prow = pparts.Row(p);
        uint64_t key = (static_cast<uint64_t>(prow[0]) << 32) | prow[1];
        auto [it, end] = index.Equal(key);
        for (; it != end; ++it) {
          const NodeId* brow = bparts.Row(bb + *it);
          out.push_back(brow[0]);
          out.push_back(brow[1]);
          out.push_back(brow[2]);
          out.push_back(prow[2]);
        }
      }
    }
    benchmark::DoNotOptimize(out);
    state.counters["out_rows"] = static_cast<double>(out.size() / 4);
  }
}
BENCHMARK(BM_JoinRadixMultiKey)
    ->Args({1 << 18, 0})
    ->Args({1 << 20, 0})
    ->Args({1 << 23, 0})
    ->Args({1 << 23, 1});

// ---- Parallel counterparts ------------------------------------------------
// The radix join kernel driven through the parallel primitives (chunked
// scatter + per-partition ParallelFor) and the parallel closure rounds, at
// dop ∈ {1, 2, 4} on identical inputs. tools/bench_diff.py reports each
// dop > 1 entry against its dop = 1 sibling in the same snapshot. Note
// the CI box is a 1-core VM: there the dop > 1 entries measure morsel
// overhead, not speedup — see ROADMAP.

void BM_JoinRadixParallel(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  int dop = static_cast<int>(state.range(1));
  uint32_t domain = KeyDomainFor(n);
  KeyedRows build = MakeKeyedRows(n, domain, false, 101);
  KeyedRows probe = MakeKeyedRows(n, domain, false, 102);
  ThreadPool pool(3);
  ExecContext ctx;
  ctx.dop = dop;
  ctx.pool = &pool;
  for (auto _ : state) {
    int bits = RadixBitsFor(n);
    RadixPartitions bparts, pparts;
    BuildRadixPartitionsParallel(build.keys, bits, ctx, &bparts,
                                 build.data.data(), 3);
    BuildRadixPartitionsParallel(probe.keys, bits, ctx, &pparts,
                                 probe.data.data(), 3);
    size_t parts = bparts.partitions();
    int par = ctx.EffectiveDop(n);
    size_t grain = ParallelGrain(parts, par, 1);
    std::vector<std::vector<NodeId>> outs((parts + grain - 1) / grain);
    ParallelFor(
        ctx.TaskPool(), par, parts, grain, Deadline(),
        [&](size_t part_begin, size_t part_end) {
          std::vector<NodeId>& out = outs[part_begin / grain];
          std::vector<uint64_t> part_keys;
          for (size_t part = part_begin; part < part_end; ++part) {
            uint32_t bb = bparts.offsets[part], be = bparts.offsets[part + 1];
            uint32_t pb = pparts.offsets[part], pe = pparts.offsets[part + 1];
            if (bb == be || pb == pe) continue;
            part_keys.resize(be - bb);
            for (uint32_t i = bb; i < be; ++i) {
              const NodeId* brow = bparts.Row(i);
              part_keys[i - bb] =
                  (static_cast<uint64_t>(brow[0]) << 32) | brow[1];
            }
            FlatJoinIndex index(part_keys.data(), part_keys.size());
            for (uint32_t p = pb; p < pe; ++p) {
              const NodeId* prow = pparts.Row(p);
              uint64_t key = (static_cast<uint64_t>(prow[0]) << 32) | prow[1];
              auto [it, end] = index.Equal(key);
              for (; it != end; ++it) {
                const NodeId* brow = bparts.Row(bb + *it);
                out.push_back(brow[0]);
                out.push_back(brow[1]);
                out.push_back(brow[2]);
                out.push_back(prow[2]);
              }
            }
          }
          return true;
        });
    size_t total = 0;
    for (const std::vector<NodeId>& o : outs) total += o.size();
    benchmark::DoNotOptimize(outs);
    state.counters["out_rows"] = static_cast<double>(total / 4);
  }
}
BENCHMARK(BM_JoinRadixParallel)
    ->Args({1 << 22, 1})
    ->Args({1 << 22, 2})
    ->Args({1 << 22, 4})
    ->Args({1 << 23, 1})
    ->Args({1 << 23, 4});

void BM_ClosureParallel(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  int dop = static_cast<int>(state.range(1));
  BinaryRelation r = RandomRelation(n, n * 2, 7);
  ThreadPool pool(3);
  ExecContext ctx;
  ctx.dop = dop;
  ctx.pool = &pool;
  // Early rounds have small deltas; lower the degrade threshold so the
  // bulk of the expansion runs parallel.
  ctx.parallel_min_rows = size_t{1} << 12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BinaryRelation::TransitiveClosure(r, ctx));
  }
}
BENCHMARK(BM_ClosureParallel)
    ->Args({2048, 1})
    ->Args({2048, 2})
    ->Args({2048, 4});

void BM_JoinHashSorted(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  uint32_t domain = KeyDomainFor(n);
  KeyedRows build = MakeKeyedRows(n, domain, false, 103);
  KeyedRows probe = MakeKeyedRows(n, domain, false, 104);
  SortKeyedRows(&build);
  SortKeyedRows(&probe);
  for (auto _ : state) {
    FlatJoinIndex index(build.keys);
    std::vector<NodeId> out;
    for (uint32_t p = 0; p < n; ++p) {
      auto [it, end] = index.Equal(probe.keys[p]);
      for (; it != end; ++it) EmitJoinRow(build, *it, probe, p, &out);
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_JoinHashSorted)->Arg(1 << 18)->Arg(1 << 20);

void BM_JoinMergeSorted(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  uint32_t domain = KeyDomainFor(n);
  KeyedRows build = MakeKeyedRows(n, domain, false, 103);
  KeyedRows probe = MakeKeyedRows(n, domain, false, 104);
  SortKeyedRows(&build);
  SortKeyedRows(&probe);
  for (auto _ : state) {
    std::vector<NodeId> out;
    uint32_t l = 0, r = 0;
    while (l < n && r < n) {
      uint64_t lk = probe.keys[l], rk = build.keys[r];
      if (lk < rk) {
        ++l;
      } else if (lk > rk) {
        ++r;
      } else {
        uint32_t le = l + 1;
        while (le < n && probe.keys[le] == lk) ++le;
        uint32_t re = r + 1;
        while (re < n && build.keys[re] == rk) ++re;
        for (uint32_t li = l; li < le; ++li) {
          for (uint32_t ri = r; ri < re; ++ri) {
            EmitJoinRow(build, ri, probe, li, &out);
          }
        }
        l = le;
        r = re;
      }
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_JoinMergeSorted)->Arg(1 << 18)->Arg(1 << 20);

void BM_ExecSemiJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph graph = RandomJoinGraph(n, n * 4);
  Catalog catalog(graph);
  RaExprPtr plan = RaExpr::SemiJoin(RaExpr::EdgeScan("e1", "x", "y"),
                                    RaExpr::EdgeScan("e2", "y", "z"));
  Executor executor(catalog);
  for (auto _ : state) {
    auto result = executor.Run(plan);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExecSemiJoin)->Arg(10000)->Arg(30000);

void BM_ExecSeededClosure(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph graph = RandomJoinGraph(n, n * 2);
  Catalog catalog(graph);
  RaExprPtr plan = RaExpr::TransitiveClosure(
      RaExpr::EdgeScan("e1", "s", "t"), "s", "t",
      RaExpr::NodeScan({"SEED"}, "s"), SeedSide::kSource);
  Executor executor(catalog);
  for (auto _ : state) {
    auto result = executor.Run(plan);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExecSeededClosure)->Arg(1024)->Arg(4096);

void BM_NaiveSeededClosure(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph graph = RandomJoinGraph(n, n * 2);
  Catalog catalog(graph);
  const BinaryRelation& base = catalog.EdgeTable("e1");
  std::vector<NodeId> seeds = graph.NodesWithLabel("SEED");
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive::SeededClosure(base, seeds, true));
  }
}
BENCHMARK(BM_NaiveSeededClosure)->Arg(1024)->Arg(4096);

void BM_ExecMemoizedUnion(benchmark::State& state) {
  // Two disjuncts identical up to column renaming: the second is a memo
  // hit whose cost is the relabel (a full data copy before zero-copy
  // sharing, a constant-time relabel after).
  size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph graph = RandomJoinGraph(n, n * 4);
  Catalog catalog(graph);
  RaExprPtr left = RaExpr::Join(RaExpr::EdgeScan("e1", "x", "y"),
                                RaExpr::EdgeScan("e2", "y", "z"));
  RaExprPtr right = RaExpr::Join(RaExpr::EdgeScan("e1", "a", "b"),
                                 RaExpr::EdgeScan("e2", "b", "c"));
  RaExprPtr plan = RaExpr::Union(
      RaExpr::Project(left, {{"x", "u"}, {"z", "v"}}),
      RaExpr::Project(right, {{"a", "u"}, {"c", "v"}}));
  Executor executor(catalog);
  for (auto _ : state) {
    auto result = executor.Run(plan);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExecMemoizedUnion)->Arg(10000);

void BM_RelationalY6(benchmark::State& state) {
  YagoConfig config;
  config.persons = 1000;
  PropertyGraph graph = GenerateYago(config);
  Catalog catalog(graph);
  Ucqt query = *ParseUcqt("x1, x2 <- (x1, owns/isLocatedIn+, x2)");
  RaExprPtr plan = OptimizePlan(*UcqtToRa(query), catalog);
  Executor executor(catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Run(plan));
  }
}
BENCHMARK(BM_RelationalY6);

void BM_GraphEngineY6(benchmark::State& state) {
  YagoConfig config;
  config.persons = 1000;
  PropertyGraph graph = GenerateYago(config);
  GraphEngine engine(graph);
  Ucqt query = *ParseUcqt("x1, x2 <- (x1, owns/isLocatedIn+, x2)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(query));
  }
}
BENCHMARK(BM_GraphEngineY6);

void BM_LdbcGeneration(benchmark::State& state) {
  for (auto _ : state) {
    LdbcConfig config;
    config.persons = static_cast<size_t>(state.range(0));
    benchmark::DoNotOptimize(GenerateLdbc(config));
  }
}
BENCHMARK(BM_LdbcGeneration)->Arg(100)->Arg(500);

// ---- Cost-based DP planner (src/ra/planner) -------------------------------

// Planning wall time of the DP join enumerator on an N-relation chain
// cluster (the acceptance budget: a 10-relation cluster under 50 ms).
// The catalog statistics are warmed outside the loop so the measurement
// isolates enumeration, not stat collection.
void BM_PlanEnumeration(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(13);
  PropertyGraph graph;
  for (size_t i = 0; i < 2000; ++i) graph.AddNode("N");
  for (int rel = 0; rel < n; ++rel) {
    std::string label = "e" + std::to_string(rel);
    for (size_t i = 0; i < 4000; ++i) {
      (void)graph.AddEdge(static_cast<NodeId>(rng.Uniform(2000)), label,
                          static_cast<NodeId>(rng.Uniform(2000)));
    }
  }
  Catalog catalog(graph);
  RaExprPtr plan = RaExpr::EdgeScan("e0", "c0", "c1");
  for (int rel = 1; rel < n; ++rel) {
    plan = RaExpr::Join(plan,
                        RaExpr::EdgeScan("e" + std::to_string(rel),
                                         "c" + std::to_string(rel),
                                         "c" + std::to_string(rel + 1)));
  }
  OptimizerOptions options;
  options.planner = PlannerKind::kDp;
  benchmark::DoNotOptimize(OptimizePlan(plan, catalog, options));  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(OptimizePlan(plan, catalog, options));
  }
}
BENCHMARK(BM_PlanEnumeration)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

// End-to-end join-order quality, DP vs greedy, on the interesting-order
// cluster (two merge-joinable "big" relations plus a small connector):
// greedy starts from the small relation, buries the sorted prefix and
// hashes; DP keeps big1 |><| big2 sorted and merges. Same process, same
// inputs — the pair is a drift-free counterpart in bench_diff.py.
PropertyGraph OrderQualityGraph() {
  Rng rng(7);
  PropertyGraph graph;
  constexpr size_t kNodes = 50000;
  for (size_t i = 0; i < kNodes; ++i) graph.AddNode("N");
  for (size_t i = 0; i < 300000; ++i) {
    NodeId a = static_cast<NodeId>(rng.Uniform(kNodes));
    NodeId b = static_cast<NodeId>(rng.Uniform(kNodes));
    (void)graph.AddEdge(a, "big1", b);
    (void)graph.AddEdge(a, "big2", b);
  }
  for (size_t i = 0; i < 60000; ++i) {
    (void)graph.AddEdge(static_cast<NodeId>(rng.Uniform(kNodes)), "small",
                        static_cast<NodeId>(rng.Uniform(kNodes)));
  }
  graph.Finalize();
  return graph;
}

void RunOrderQuality(benchmark::State& state, PlannerKind planner) {
  PropertyGraph graph = OrderQualityGraph();
  Catalog catalog(graph);
  RaExprPtr cluster = RaExpr::Join(
      RaExpr::Join(RaExpr::EdgeScan("small", "b", "c"),
                   RaExpr::EdgeScan("big1", "a", "b")),
      RaExpr::EdgeScan("big2", "a", "b"));
  OptimizerOptions options;
  options.planner = planner;
  RaExprPtr plan = OptimizePlan(cluster, catalog, options);
  Executor executor(catalog);
  size_t rows = 0;
  for (auto _ : state) {
    auto result = executor.Run(plan);
    if (result.ok()) rows = result->rows();
    benchmark::DoNotOptimize(result);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
}

void BM_JoinOrderQualityDP(benchmark::State& state) {
  RunOrderQuality(state, PlannerKind::kDp);
}
BENCHMARK(BM_JoinOrderQualityDP);

void BM_JoinOrderQualityGreedy(benchmark::State& state) {
  RunOrderQuality(state, PlannerKind::kGreedy);
}
BENCHMARK(BM_JoinOrderQualityGreedy);

// ---- Plan-cache payoff (api::Database facade) ------------------------------
//
// BM_PreparedVsCold serves a query through the facade's plan cache (one
// cache lookup + execution); BM_ColdPrepare runs the full cold pipeline
// (parse + schema rewrite + UCQT2RRA + optimize + execute) on the same
// query in the same process. Small-result workload queries keep execution
// cheap so the prepare overhead is visible; the bench_diff.py pair prints
// the drift-free speedup ratio.

struct PreparedBenchCase {
  const char* name;
  bool ldbc;  // which of the two databases below the query runs on
  const char* query;
};

constexpr PreparedBenchCase kPreparedBenchCases[] = {
    {"yago-owns-located", false, "x1, x2 <- (x1, owns/isLocatedIn, x2)"},
    {"yago-lives-closure", false,
     "x1, x2 <- (x1, livesIn/isLocatedIn+, x2)"},
    {"ldbc-work-located", true, "x1, x2 <- (x1, workAt/isLocatedIn, x2)"},
    {"ldbc-reply-closure", true, "x1, x2 <- (x1, replyOf+, x2)"},
};

api::Database& PreparedBenchDatabase(bool ldbc) {
  // Leaked singletons: google-benchmark runs each benchmark many times
  // and the graphs must not be regenerated per run.
  static api::Database* yago =
      new api::Database(YagoSchema(), GenerateYago({.persons = 300}));
  static api::Database* ldbc_db =
      new api::Database(LdbcSchema(), GenerateLdbc({.persons = 150}));
  return ldbc ? *ldbc_db : *yago;
}

void BM_PreparedVsCold(benchmark::State& state) {
  const PreparedBenchCase& bench_case =
      kPreparedBenchCases[state.range(0)];
  api::Database& db = PreparedBenchDatabase(bench_case.ldbc);
  api::ExecOptions options;  // explicit defaults; cache on
  db.set_plan_cache_enabled(true);
  api::Session session(db, options);
  // Warm the cache once; every iteration below is the serving fast path
  // (normalized-text lookup hit + execute).
  auto warm = db.Prepare(bench_case.query, options);
  if (!warm.ok()) {
    state.SkipWithError(warm.status().ToString().c_str());
    return;
  }
  size_t rows = 0;
  for (auto _ : state) {
    auto result = session.Query(bench_case.query);
    if (result.ok()) rows = result->rows();
    benchmark::DoNotOptimize(result);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
  state.SetLabel(bench_case.name);
}
BENCHMARK(BM_PreparedVsCold)->DenseRange(0, 3);

void BM_ColdPrepare(benchmark::State& state) {
  const PreparedBenchCase& bench_case =
      kPreparedBenchCases[state.range(0)];
  api::Database& db = PreparedBenchDatabase(bench_case.ldbc);
  api::ExecOptions options;
  options.use_plan_cache = false;  // cold: parse/rewrite/plan every time
  api::Session session(db, options);
  size_t rows = 0;
  for (auto _ : state) {
    auto result = session.Query(bench_case.query);
    if (result.ok()) rows = result->rows();
    benchmark::DoNotOptimize(result);
  }
  state.counters["result_rows"] = static_cast<double>(rows);
  state.SetLabel(bench_case.name);
}
BENCHMARK(BM_ColdPrepare)->DenseRange(0, 3);

// ---- Serving-layer throughput (api::Server) --------------------------------
//
// End-to-end requests through the concurrent serving layer: admission,
// deadline bookkeeping, worker hand-off, prepare (cache hit or full cold
// pipeline) and execution. google-benchmark's own thread fan-out supplies
// the concurrent clients, so the Cached/Cold pair at {1,2,4} client
// threads shows both the serving overhead over a bare Session::Query and
// how the snapshot-swapped caches behave under contention. UseRealTime:
// clients block on the server's worker pool, so wall clock — not the
// client thread's own CPU — is the meaningful axis.

api::Server& ServingBenchServer() {
  // Leaked singleton (see PreparedBenchDatabase): one server, its worker
  // pool and its database survive across all benchmark runs and threads.
  static api::Server* server = [] {
    api::ServerOptions options;
    options.workers = 4;
    options.queue_capacity = 64;  // never shed: this measures throughput
    return new api::Server(PreparedBenchDatabase(false), options);
  }();
  return *server;
}

void RunServingThroughput(benchmark::State& state, bool use_cache) {
  api::Server& server = ServingBenchServer();
  api::ExecOptions options;
  options.use_plan_cache = use_cache;
  if (state.thread_index() == 0 && use_cache) {
    // Warm once so every timed iteration is the cached serving path.
    auto warm = server.database().Prepare(kPreparedBenchCases[0].query,
                                          options);
    if (!warm.ok()) {
      state.SkipWithError(warm.status().ToString().c_str());
      return;
    }
  }
  uint64_t failures = 0;
  for (auto _ : state) {
    auto response = server.Query(kPreparedBenchCases[0].query, options);
    if (!response.result.ok()) ++failures;
    benchmark::DoNotOptimize(response);
  }
  state.counters["failures"] = static_cast<double>(failures);
  state.SetLabel(kPreparedBenchCases[0].name);
}

void BM_ServingThroughputCached(benchmark::State& state) {
  RunServingThroughput(state, /*use_cache=*/true);
}
BENCHMARK(BM_ServingThroughputCached)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

void BM_ServingThroughputCold(benchmark::State& state) {
  RunServingThroughput(state, /*use_cache=*/false);
}
BENCHMARK(BM_ServingThroughputCold)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

// ---- memory governance ----------------------------------------------------
// Charge/Release through a child tracker with a bounded root: the hot-path
// cost every tracked container doubling pays. Multi-threaded runs measure
// contention on the shared root through the chunked refill.

void BM_MemTrackerCharge(benchmark::State& state) {
  static MemoryTracker root(int64_t{4} << 30, "bench-root");
  MemoryTracker query(0, "bench-query", &root);
  const int64_t bytes = state.range(0);
  for (auto _ : state) {
    bool ok = query.Charge(bytes);
    benchmark::DoNotOptimize(ok);
    query.Release(bytes);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTrackerCharge)
    ->Arg(1024)
    ->Arg(1 << 20)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime();

// ---- top-k / ORDER BY / LIMIT ---------------------------------------------
// The asymptotic-win family: a bounded heap is O(n log k) against the
// baseline's O(n log n) full sort, so at fixed k the speedup must GROW
// with the input size. Args are {rows, skewed}: uniform edge targets and
// a skew toward low node ids (dense duplicate groups stress the heap's
// tie handling). The baseline executes the unfused Limit(Sort(x)) plan —
// a full sort followed by truncation — on identical inputs in the same
// process, so tools/bench_diff.py ratios are machine-drift-free.

constexpr size_t kTopKBenchK = 64;

PropertyGraph TopKBenchGraph(size_t edges, bool skewed) {
  Rng rng(29);
  size_t nodes = edges / 4 + 64;
  PropertyGraph graph;
  for (size_t i = 0; i < nodes; ++i) {
    graph.AddNode(i % 64 == 0 ? "SEED" : "N");
  }
  for (size_t i = 0; i < edges; ++i) {
    NodeId src = static_cast<NodeId>(rng.Uniform(nodes));
    NodeId tgt = skewed
                     ? static_cast<NodeId>(rng.Uniform(rng.Uniform(nodes) + 1))
                     : static_cast<NodeId>(rng.Uniform(nodes));
    (void)graph.AddEdge(src, "e1", tgt);
  }
  return graph;
}

// Projection-swapped scan: columns (x, y) with x the edge target, so the
// input reaches the ordered operator unsorted on its key.
RaExprPtr UnsortedScan() {
  return RaExpr::Project(RaExpr::EdgeScan("e1", "y", "x"),
                         {{"x", "x"}, {"y", "y"}});
}

void BM_TopKVsSortAll(benchmark::State& state) {
  PropertyGraph graph = TopKBenchGraph(
      static_cast<size_t>(state.range(0)), state.range(1) != 0);
  Catalog catalog(graph);
  RaExprPtr plan =
      RaExpr::TopK(UnsortedScan(), {{"x", false}}, kTopKBenchK);
  Executor executor(catalog);
  for (auto _ : state) {
    auto result = executor.Run(plan);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TopKVsSortAll)
    ->Args({1 << 18, 0})
    ->Args({1 << 20, 0})
    ->Args({1 << 23, 0})
    ->Args({1 << 18, 1})
    ->Args({1 << 20, 1})
    ->Args({1 << 23, 1});

void BM_SortAllThenTruncate(benchmark::State& state) {
  PropertyGraph graph = TopKBenchGraph(
      static_cast<size_t>(state.range(0)), state.range(1) != 0);
  Catalog catalog(graph);
  // Unfused: full sort, then truncate (what Limit(Sort(x)) executes
  // when the optimizer's TopK fusion is bypassed).
  RaExprPtr plan = RaExpr::Limit(
      RaExpr::Sort(UnsortedScan(), {{"x", false}}), kTopKBenchK);
  Executor executor(catalog);
  for (auto _ : state) {
    auto result = executor.Run(plan);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortAllThenTruncate)
    ->Args({1 << 18, 0})
    ->Args({1 << 20, 0})
    ->Args({1 << 23, 0})
    ->Args({1 << 18, 1})
    ->Args({1 << 20, 1})
    ->Args({1 << 23, 1});

// Seeded-closure top-k: the frontier prune must skip real work (the
// "pruned" counter is the number of frontier entries + candidate pairs
// dropped — asserted non-zero, so the pair never silently degrades into
// measuring two identical executions).

void BM_ClosureTopKPruned(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph graph = RandomJoinGraph(n, n * 2);
  Catalog catalog(graph);
  RaExprPtr plan = RaExpr::TopK(
      RaExpr::TransitiveClosure(RaExpr::EdgeScan("e1", "s", "t"), "s", "t",
                                RaExpr::NodeScan({"SEED"}, "s"),
                                SeedSide::kSource),
      {{"s", false}}, 8);
  Executor executor(catalog);
  for (auto _ : state) {
    auto result = executor.Run(plan);
    benchmark::DoNotOptimize(result);
  }
  if (executor.topk_pruned_frontier() == 0) {
    state.SkipWithError("closure top-k prune skipped no frontier entries");
    return;
  }
  state.counters["pruned"] =
      static_cast<double>(executor.topk_pruned_frontier());
}
BENCHMARK(BM_ClosureTopKPruned)->Arg(1024)->Arg(4096);

void BM_ClosureTopKFull(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  PropertyGraph graph = RandomJoinGraph(n, n * 2);
  Catalog catalog(graph);
  RaExprPtr plan = RaExpr::TopK(
      RaExpr::TransitiveClosure(RaExpr::EdgeScan("e1", "s", "t"), "s", "t",
                                RaExpr::NodeScan({"SEED"}, "s"),
                                SeedSide::kSource),
      {{"s", false}}, 8);
  Executor executor(catalog);
  ExecContext ctx;
  ctx.topk_pruning = false;  // full fixpoint feeding the bounded heap
  for (auto _ : state) {
    auto result = executor.Run(plan, ctx);
    benchmark::DoNotOptimize(result);
  }
  if (executor.topk_pruned_frontier() != 0) {
    state.SkipWithError("pruning fired with the knob off");
  }
}
BENCHMARK(BM_ClosureTopKFull)->Arg(1024)->Arg(4096);

// Headline pair for the incremental-maintenance subsystem: one write
// plus a small read mix (flat join, unseeded closure, scan of the
// written label) per iteration, through the full facade. The delta
// variant buffers the write, serves base + seal through the overlay and
// keeps retained plans; the rebuild variant pays the legacy
// invalidate-everything path — catalog, statistics and plans rebuilt on
// every write. Compare within one BENCH_micro.json via bench_diff.py.
void MixedReadWrite(benchmark::State& state, bool delta) {
  api::Database db(YagoSchema(), GenerateYago({.persons = 60, .seed = 3}));
  db.set_plan_cache_enabled(true);
  db.set_delta_enabled(delta);
  db.set_delta_merge_rows(512);
  api::ExecOptions options;
  options.timeout_ms = 0;
  options.apply_schema_rewrite = false;  // bmLink is not in the schema
  api::Session session(db, options);
  const char* const queries[] = {
      "x1, x2 <- (x1, owns/isLocatedIn, x2)",
      "x1, x2 <- (x1, isMarriedTo+, x2)",
      "x, y <- (x, bmLink, y)",
  };
  // Endpoints cycle through fresh (src, tgt) pairs so no write is a
  // dropped duplicate: every iteration really mutates.
  size_t nodes = db.graph().num_nodes();
  uint64_t k = 0;
  for (auto _ : state) {
    NodeId src = static_cast<NodeId>(k % nodes);
    NodeId tgt = static_cast<NodeId>((k / nodes) % nodes);
    ++k;
    Status added = db.AddEdge(src, "bmLink", tgt);
    if (!added.ok()) {
      state.SkipWithError(added.ToString().c_str());
      return;
    }
    for (const char* query : queries) {
      auto result = session.Query(query);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(result->rows());
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["compactions"] =
      static_cast<double>(db.delta_stats().compactions);
}

void BM_MixedReadWriteDelta(benchmark::State& state) {
  MixedReadWrite(state, /*delta=*/true);
}
BENCHMARK(BM_MixedReadWriteDelta);

void BM_MixedReadWriteRebuild(benchmark::State& state) {
  MixedReadWrite(state, /*delta=*/false);
}
BENCHMARK(BM_MixedReadWriteRebuild);

// Headline pairs for the shard layer (src/shard/): the same query
// through the full facade against a 4-way partition (per-shard fixpoints
// with frontier exchange for the closure, driver fan-out + union for the
// join) and against unsharded storage — identical results by the layer's
// invariant, so the ratio isolates pure layout/exchange cost. Compare
// within one BENCH_micro.json via bench_diff.py.
void ShardedFacadeQuery(benchmark::State& state, int shards,
                        const char* query) {
  api::Database db(YagoSchema(), GenerateYago({.persons = 300, .seed = 7}));
  db.set_shards(shards);
  api::ExecOptions options;
  options.timeout_ms = 0;
  options.apply_schema_rewrite = false;  // keep one plan shape per query
  api::Session session(db, options);
  // Warm outside the loop: snapshot + partition build and the plan-cache
  // entry are one-time costs; the loop measures execution.
  auto warm = session.Query(query);
  if (!warm.ok()) {
    state.SkipWithError(warm.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto result = session.Query(query);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->rows());
  }
  state.SetItemsProcessed(state.iterations());
}

constexpr const char* kShardClosureQuery =
    "x1, x2 <- (x1, isMarriedTo+, x2)";
constexpr const char* kShardJoinQuery =
    "x1, x2 <- (x1, owns/isLocatedIn, x2)";

void BM_ShardedClosure(benchmark::State& state) {
  ShardedFacadeQuery(state, /*shards=*/4, kShardClosureQuery);
}
BENCHMARK(BM_ShardedClosure);

void BM_UnshardedClosure(benchmark::State& state) {
  ShardedFacadeQuery(state, /*shards=*/1, kShardClosureQuery);
}
BENCHMARK(BM_UnshardedClosure);

void BM_ShardedJoin(benchmark::State& state) {
  ShardedFacadeQuery(state, /*shards=*/4, kShardJoinQuery);
}
BENCHMARK(BM_ShardedJoin);

void BM_UnshardedJoin(benchmark::State& state) {
  ShardedFacadeQuery(state, /*shards=*/1, kShardJoinQuery);
}
BENCHMARK(BM_UnshardedJoin);

}  // namespace
}  // namespace gqopt

// Reproduces paper Fig 14: runtime distributions on the graph engine
// ("Neo4j" role, N) and the relational engine ("PostgreSQL" role, P) for
// the chain-shaped (Cypher-expressible) LDBC queries, baseline vs schema,
// at the four smaller scale factors (the paper's Neo4j could not complete
// SF 10/30 within the timeout).

#include <cstdio>

#include "bench_common.h"
#include "translate/cypher_emitter.h"
#include "util/stats.h"

int main() {
  using namespace gqopt;
  using namespace gqopt::bench;

  api::ExecOptions options = MatrixOptions();
  GraphSchema schema = LdbcSchema();
  std::vector<PreparedQuery> all = PrepareWorkload(LdbcWorkload(), schema);

  // Chain-shaped subset (paper §5.5; UC2RPQ fragment).
  std::vector<PreparedQuery> queries;
  for (PreparedQuery& q : all) {
    if (IsCypherExpressible(q.baseline)) queries.push_back(std::move(q));
  }
  std::printf("== Fig 14: engine comparison on the %zu chain-shaped LDBC "
              "queries (paper: 15) ==\n",
              queries.size());

  std::vector<std::string> header = {"SF",  "Series", "n",    "min",
                                     "q1",  "median", "q3",   "max",
                                     "mean"};
  std::vector<std::vector<std::string>> rows;
  size_t sf_count = std::min<size_t>(ScaleFactorCount(), 4);  // 0.1 .. 3
  for (size_t s = 0; s < sf_count; ++s) {
    const ScaleFactor& sf = LdbcScaleFactors()[s];
    LdbcConfig config;
    config.persons = sf.persons;
    api::Database db(schema, GenerateLdbc(config));
    std::fprintf(stderr, "# SF %s: %zu nodes, %zu edges\n", sf.name,
                 db.graph().num_nodes(), db.graph().num_edges());

    std::vector<double> series[4];  // N-B, N-S, P-B, P-S
    for (const PreparedQuery& q : queries) {
      RunMeasurement nb = MeasureGraph(db, q.baseline, options);
      RunMeasurement ns =
          q.reverted ? nb : MeasureGraph(db, q.schema, options);
      RunMeasurement pb = MeasureRelational(db, q.baseline, options);
      RunMeasurement ps =
          q.reverted ? pb : MeasureRelational(db, q.schema, options);
      if (nb.feasible) series[0].push_back(nb.seconds);
      if (ns.feasible) series[1].push_back(ns.seconds);
      if (pb.feasible) series[2].push_back(pb.seconds);
      if (ps.feasible) series[3].push_back(ps.seconds);
    }
    const char* names[4] = {"N-Baseline", "N-Schema", "P-Baseline",
                            "P-Schema"};
    for (int i = 0; i < 4; ++i) {
      Summary summary = Summarize(series[i]);
      rows.push_back({sf.name, names[i], std::to_string(summary.count),
                      FormatSeconds(summary.min), FormatSeconds(summary.q1),
                      FormatSeconds(summary.median),
                      FormatSeconds(summary.q3), FormatSeconds(summary.max),
                      FormatSeconds(summary.mean)});
    }
  }
  PrintTable(header, rows);
  std::printf("\nPaper's pattern: the schema-based approach improves the "
              "median on both engines; the relational engine scales "
              "further than the graph engine.\n");
  return 0;
}

// Reproduces paper Fig 12: per-query runtimes of the 18 YAGO queries,
// baseline vs schema-based, on the relational engine. The paper reports an
// average speedup of 6.1x.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace gqopt;
  using namespace gqopt::bench;

  size_t persons = 2000;
  if (const char* env = std::getenv("GQOPT_YAGO_PERSONS")) {
    persons = std::strtoul(env, nullptr, 10);
  }
  YagoConfig config;
  config.persons = persons;
  GraphSchema schema = YagoSchema();
  api::Database db(schema, GenerateYago(config));
  std::fprintf(stderr, "# YAGO: %zu nodes, %zu edges\n",
               db.graph().num_nodes(), db.graph().num_edges());

  std::vector<PreparedQuery> queries =
      PrepareWorkload(YagoWorkload(), schema);
  api::ExecOptions options = api::ExecOptions::FromEnv();
  // PostgreSQL backend profile (see MatrixOptions in bench_common.h).
  options.enable_fixpoint_seeding = false;

  std::printf("== Fig 12: YAGO query runtimes, baseline vs schema "
              "(relational engine, seconds) ==\n");
  std::vector<std::string> header = {"Query",  "Baseline", "Schema",
                                     "Speedup", "Rows",    "Note"};
  std::vector<std::vector<std::string>> rows;
  double speedup_sum = 0;
  size_t speedup_count = 0;
  for (const PreparedQuery& q : queries) {
    RunMeasurement baseline = MeasureRelational(db, q.baseline, options);
    RunMeasurement schema_run =
        q.reverted ? baseline
                   : MeasureRelational(db, q.schema, options);
    std::vector<std::string> row(6);
    row[0] = q.id;
    row[1] = baseline.feasible ? FormatSeconds(baseline.seconds)
                               : "timeout";
    row[2] = schema_run.feasible ? FormatSeconds(schema_run.seconds)
                                 : "timeout";
    if (baseline.feasible && schema_run.feasible &&
        schema_run.seconds > 0) {
      double speedup = baseline.seconds / schema_run.seconds;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
      row[3] = buf;
      speedup_sum += speedup;
      ++speedup_count;
    } else if (!baseline.feasible && schema_run.feasible) {
      row[3] = "inf (baseline timed out)";
    }
    row[4] = schema_run.feasible ? std::to_string(schema_run.result_rows)
                                 : "-";
    row[5] = q.reverted ? "reverted" : "";
    rows.push_back(std::move(row));
  }
  PrintTable(header, rows);
  if (speedup_count > 0) {
    std::printf("\nAverage speedup over feasible queries: %.2fx "
                "(paper: 6.1x on PostgreSQL)\n",
                speedup_sum / static_cast<double>(speedup_count));
  }
  return 0;
}

// Reproduces paper Fig 13: box-plot statistics of the 30 LDBC query
// runtimes per scale factor, baseline vs schema-based, on the relational
// engine. Tune with GQOPT_SF_CAP / GQOPT_TIMEOUT_MS / GQOPT_REPS.

#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace gqopt;
  using namespace gqopt::bench;

  std::vector<MatrixCell> cells = RunLdbcMatrix(MatrixOptions());
  MaybeWriteMatrixJson(cells);

  std::printf("== Fig 13: LDBC runtime distribution per scale factor "
              "(seconds over feasible runs) ==\n");
  std::vector<std::string> header = {"SF",  "Approach", "n",    "min",
                                     "q1",  "median",   "q3",   "max",
                                     "mean"};
  std::vector<std::vector<std::string>> rows;
  size_t sf_count = ScaleFactorCount();
  for (size_t s = 0; s < sf_count; ++s) {
    const char* sf = LdbcScaleFactors()[s].name;
    for (bool schema_side : {false, true}) {
      std::vector<double> times;
      for (const MatrixCell& cell : cells) {
        if (cell.sf != sf) continue;
        const RunMeasurement& m =
            schema_side ? cell.schema : cell.baseline;
        if (m.feasible) times.push_back(m.seconds);
      }
      Summary summary = Summarize(std::move(times));
      std::vector<std::string> row(9);
      row[0] = sf;
      row[1] = schema_side ? "Schema" : "Baseline";
      row[2] = std::to_string(summary.count);
      row[3] = FormatSeconds(summary.min);
      row[4] = FormatSeconds(summary.q1);
      row[5] = FormatSeconds(summary.median);
      row[6] = FormatSeconds(summary.q3);
      row[7] = FormatSeconds(summary.max);
      row[8] = FormatSeconds(summary.mean);
      rows.push_back(std::move(row));
    }
  }
  PrintTable(header, rows);

  if (std::getenv("GQOPT_VERBOSE") != nullptr) {
    std::printf("\n-- per-query measurements --\n");
    for (const MatrixCell& cell : cells) {
      std::printf("SF %-4s %-6s B=%s S=%s\n", cell.sf.c_str(),
                  cell.query.c_str(),
                  cell.baseline.feasible
                      ? FormatSeconds(cell.baseline.seconds).c_str()
                      : "timeout",
                  cell.schema.feasible
                      ? FormatSeconds(cell.schema.seconds).c_str()
                      : "timeout");
    }
  }
  return 0;
}

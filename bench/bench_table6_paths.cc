// Reproduces paper Tab 6: statistics on the fixed-length paths that
// replace transitive closures in the rewritten YAGO queries.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_common.h"

int main() {
  using namespace gqopt;
  using namespace gqopt::bench;

  GraphSchema schema = YagoSchema();
  std::vector<PreparedQuery> queries =
      PrepareWorkload(YagoWorkload(), schema);

  std::printf("== Table 6: fixed-length paths generated as replacement "
              "for transitive closure (YAGO) ==\n");
  std::vector<std::string> header = {"Query", "#Paths", "Min", "Avg",
                                     "Max",   "Note"};
  std::vector<std::vector<std::string>> rows;
  for (const PreparedQuery& q : queries) {
    std::vector<int> lengths = q.stats.all_path_lengths();
    std::vector<std::string> row(6);
    row[0] = q.id;
    if (q.reverted) {
      row[5] = "reverted to initial query";
    } else if (lengths.empty()) {
      row[5] = "no closure eliminated";
    } else {
      int min = *std::min_element(lengths.begin(), lengths.end());
      int max = *std::max_element(lengths.begin(), lengths.end());
      double avg =
          std::accumulate(lengths.begin(), lengths.end(), 0.0) /
          static_cast<double>(lengths.size());
      char buf[32];
      row[1] = std::to_string(lengths.size());
      row[2] = std::to_string(min);
      std::snprintf(buf, sizeof(buf), "%.1f", avg);
      row[3] = buf;
      row[4] = std::to_string(max);
      size_t kept = q.stats.closures.size() -
                    q.stats.eliminated_closures();
      if (kept > 0) {
        row[5] = std::to_string(kept) + " closure(s) kept";
      }
    }
    rows.push_back(std::move(row));
  }
  PrintTable(header, rows);

  size_t eliminated = 0;
  for (const PreparedQuery& q : queries) {
    if (q.stats.eliminated_closures() > 0) ++eliminated;
  }
  std::printf("\nTransitive closure eliminated in %zu of %zu YAGO queries "
              "(paper: 16 of 18).\n",
              eliminated, queries.size());
  return 0;
}

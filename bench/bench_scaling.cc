// Scaling sweep (beyond the paper's figures, supporting its §5.3/§5.4
// narrative): how the average YAGO speedup of the schema-based approach
// evolves with dataset size, i.e. where the crossover between rewrite
// overhead and intermediate-result savings falls.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace gqopt;
  using namespace gqopt::bench;

  GraphSchema schema = YagoSchema();
  std::vector<PreparedQuery> queries =
      PrepareWorkload(YagoWorkload(), schema);
  api::ExecOptions options = MatrixOptions();

  std::printf("== Scaling sweep: average YAGO speedup vs dataset size "
              "(relational engine, SQL-backend profile) ==\n");
  std::vector<std::string> header = {"Persons", "Nodes",    "Edges",
                                     "Feasible", "AvgSpeedup"};
  std::vector<std::vector<std::string>> rows;
  for (size_t persons : {250, 1000, 4000, 12000}) {
    YagoConfig config;
    config.persons = persons;
    api::Database db(schema, GenerateYago(config));
    double speedup_sum = 0;
    size_t feasible = 0;
    for (const PreparedQuery& q : queries) {
      RunMeasurement baseline = MeasureRelational(db, q.baseline, options);
      RunMeasurement enriched =
          q.reverted ? baseline
                     : MeasureRelational(db, q.schema, options);
      if (baseline.feasible && enriched.feasible &&
          enriched.seconds > 0) {
        speedup_sum += baseline.seconds / enriched.seconds;
        ++feasible;
      }
    }
    char avg[32];
    std::snprintf(avg, sizeof(avg), "%.2fx",
                  feasible > 0 ? speedup_sum / feasible : 0.0);
    rows.push_back({std::to_string(persons),
                    std::to_string(db.graph().num_nodes()),
                    std::to_string(db.graph().num_edges()),
                    std::to_string(feasible) + "/" +
                        std::to_string(queries.size()),
                    avg});
  }
  PrintTable(header, rows);
  std::printf("\nThe speedup grows with scale: rewriting overhead is fixed "
              "while the avoided intermediate results grow with the "
              "data.\n");
  return 0;
}

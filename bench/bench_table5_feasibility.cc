// Reproduces paper Tab 5: the number (and percentage) of LDBC queries that
// complete within the timeout per scale factor, split into recursive and
// non-recursive, baseline vs schema-based.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace gqopt;
  using namespace gqopt::bench;

  std::vector<MatrixCell> cells = RunLdbcMatrix(MatrixOptions());
  MaybeWriteMatrixJson(cells);

  std::printf("== Table 5: LDBC query feasibility across scale factors "
              "==\n");
  std::vector<std::string> header = {
      "SF",      "RQ Baseline", "RQ Baseline %", "RQ Schema",
      "RQ Schema %", "NQ Baseline", "NQ Baseline %", "NQ Schema",
      "NQ Schema %"};
  std::vector<std::vector<std::string>> rows;
  size_t sf_count = ScaleFactorCount();
  for (size_t s = 0; s < sf_count; ++s) {
    const char* sf = LdbcScaleFactors()[s].name;
    size_t rq_total = 0, nq_total = 0;
    size_t rq_base = 0, rq_schema = 0, nq_base = 0, nq_schema = 0;
    for (const MatrixCell& cell : cells) {
      if (cell.sf != sf) continue;
      if (cell.recursive) {
        ++rq_total;
        if (cell.baseline.feasible) ++rq_base;
        if (cell.schema.feasible) ++rq_schema;
      } else {
        ++nq_total;
        if (cell.baseline.feasible) ++nq_base;
        if (cell.schema.feasible) ++nq_schema;
      }
    }
    auto pct = [](size_t n, size_t total) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.1f",
                    total == 0 ? 0.0
                               : 100.0 * static_cast<double>(n) /
                                     static_cast<double>(total));
      return std::string(buf);
    };
    rows.push_back({sf, std::to_string(rq_base), pct(rq_base, rq_total),
                    std::to_string(rq_schema), pct(rq_schema, rq_total),
                    std::to_string(nq_base), pct(nq_base, nq_total),
                    std::to_string(nq_schema), pct(nq_schema, nq_total)});
  }
  PrintTable(header, rows);
  std::printf("\nPaper's pattern: the schema approach keeps more recursive "
              "queries feasible as SF grows (38.9%% vs 27.8%% at SF 30); "
              "non-recursive feasibility is identical.\n");
  return 0;
}

// Entry point for bench_micro with machine-readable output support.
//
// In addition to the standard google-benchmark flags, understands
//   --json[=PATH]   write results as JSON to PATH (default BENCH_micro.json)
// which is translated to --benchmark_out/--benchmark_out_format so the
// perf trajectory can be tracked across PRs without scraping stdout.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  std::vector<std::string> storage;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_micro.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      // An empty path (e.g. a stray '--json=') still means "emit JSON".
      json_path = argv[i][7] != '\0' ? argv[i] + 7 : "BENCH_micro.json";
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) {
    storage.push_back("--benchmark_out=" + json_path);
    storage.push_back("--benchmark_out_format=json");
    for (std::string& s : storage) args.push_back(s.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Reproduces the paper's worked rewriting examples on the Fig 1 schema:
//   - Tab 1: the triple sets inferred for phi4 = livesIn/isLocatedIn+/
//     dealsWith+ and its sub-terms (Example 10);
//   - Fig 7: the preliminary simplification example;
//   - Example 13: the final rewritten query RS(phi4).

#include <cstdio>
#include <string>
#include <vector>

#include "algebra/path_parser.h"
#include "api/stages.h"  // white-box: this bench exercises the rewrite stage
#include "benchsup/harness.h"
#include "core/simplifier.h"
#include "core/type_inference.h"
#include "query/query_parser.h"
#include "schema/schema_parser.h"

namespace gqopt {
namespace {

GraphSchema Fig1Schema() {
  auto schema = ParseSchema(R"(
node PERSON {name:string, age:int}
node CITY {name:string}
node PROPERTY {address:string}
node REGION {name:string}
node COUNTRY {name:string}
edge PERSON -isMarriedTo-> PERSON
edge PERSON -livesIn-> CITY
edge PERSON -owns-> PROPERTY
edge PROPERTY -isLocatedIn-> CITY
edge CITY -isLocatedIn-> REGION
edge REGION -isLocatedIn-> COUNTRY
edge COUNTRY -dealsWith-> COUNTRY
)");
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    std::exit(1);
  }
  return *schema;
}

void PrintTriples(const std::string& term, const GraphSchema& schema) {
  auto expr = ParsePathExpr(term);
  if (!expr.ok()) {
    std::fprintf(stderr, "%s\n", expr.status().ToString().c_str());
    return;
  }
  auto inferred = InferTriples(*expr, schema);
  if (!inferred.ok()) {
    std::printf("  %-28s -> %s\n", term.c_str(),
                inferred.status().ToString().c_str());
    return;
  }
  std::printf("  TS(%s): %zu triple(s)\n", term.c_str(),
              inferred->triples.size());
  for (const SchemaTriple& t : inferred->triples) {
    std::printf("    %s\n", t.ToString().c_str());
  }
}

}  // namespace
}  // namespace gqopt

int main() {
  using namespace gqopt;
  GraphSchema schema = Fig1Schema();

  std::printf("== Table 1: inference on phi4 = livesIn/isLocatedIn+/"
              "dealsWith+ (Fig 1 schema) ==\n");
  for (const char* term :
       {"livesIn", "isLocatedIn+", "dealsWith+", "livesIn/isLocatedIn+",
        "livesIn/isLocatedIn+/dealsWith+"}) {
    PrintTriples(term, schema);
  }

  std::printf("\n== Fig 7: preliminary path simplification ==\n");
  auto red = ParsePathExpr(
      "(((owns[isMarriedTo+/livesIn/dealsWith+])/(isLocatedIn+)+)+)+");
  std::printf("  phi_red = %s\n", (*red)->ToString().c_str());
  std::printf("  phi_opt = %s\n", SimplifyPath(*red)->ToString().c_str());

  std::printf("\n== Example 13: schema-enriched query RS(phi4) ==\n");
  auto query =
      ParseUcqt("x1, x2 <- (x1, livesIn/isLocatedIn+/dealsWith+, x2)");
  auto rewritten = RewriteQuery(*query, schema);
  std::printf("  input:     %s\n", query->ToString().c_str());
  std::printf("  rewritten: %s\n",
              rewritten->query.ToString().c_str());
  std::printf("  transitive closures eliminated: %zu of %zu\n",
              rewritten->stats.eliminated_closures(),
              rewritten->stats.closures.size());
  return 0;
}

// Statistics-catalog tests (src/stats): exact per-label counts and degree
// statistics on the paper's Fig 2 instance, the schema-derived bounds from
// the observed label graph, and their consumption by the Estimator.

#include <gtest/gtest.h>

#include "ra/catalog.h"
#include "ra/explain.h"
#include "stats/graph_stats.h"
#include "test_fixtures.h"

namespace gqopt {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  StatsTest() : graph_(testing::Fig2Graph()), catalog_(graph_) {}

  PropertyGraph graph_;
  Catalog catalog_;
};

TEST_F(StatsTest, EdgeLabelCountsAreExact) {
  const EdgeLabelStats& owns = catalog_.stats().EdgeFor("owns");
  EXPECT_EQ(owns.rows, 1u);
  EXPECT_EQ(owns.distinct_sources, 1u);
  EXPECT_EQ(owns.distinct_targets, 1u);
  EXPECT_DOUBLE_EQ(owns.avg_out_degree, 1.0);

  // isLocatedIn: (n1,n6), (n4,n5), (n5,n7), (n6,n5).
  const EdgeLabelStats& loc = catalog_.stats().EdgeFor("isLocatedIn");
  EXPECT_EQ(loc.rows, 4u);
  EXPECT_EQ(loc.distinct_sources, 4u);
  EXPECT_EQ(loc.distinct_targets, 3u);
  EXPECT_DOUBLE_EQ(loc.avg_out_degree, 1.0);
  EXPECT_DOUBLE_EQ(loc.avg_in_degree, 4.0 / 3.0);
}

TEST_F(StatsTest, UnknownLabelIsEmpty) {
  const EdgeLabelStats& none = catalog_.stats().EdgeFor("noSuchLabel");
  EXPECT_EQ(none.rows, 0u);
  EXPECT_DOUBLE_EQ(none.closure_bound, 0.0);
}

TEST_F(StatsTest, LabelBoundsComeFromObservedEndpointLabels) {
  // isLocatedIn sources: PROPERTY(n1), CITY(n4, n6), REGION(n5) -> 1+2+1.
  // Targets: CITY(n6), REGION(n5), COUNTRY(n7) -> 2+1+1.
  const EdgeLabelStats& loc = catalog_.stats().EdgeFor("isLocatedIn");
  EXPECT_EQ(loc.source_label_bound, 4u);
  EXPECT_EQ(loc.target_label_bound, 4u);
}

TEST_F(StatsTest, ClosureBoundCountsReachableLabelPairs) {
  // Label graph of isLocatedIn: PROPERTY -> CITY -> REGION -> COUNTRY.
  // Reachable ordered pairs weighted by extents (1, 2, 1, 1):
  //   P->C 2, P->R 1, P->Co 1, C->R 2, C->Co 2, R->Co 1  == 9.
  const EdgeLabelStats& loc = catalog_.stats().EdgeFor("isLocatedIn");
  EXPECT_DOUBLE_EQ(loc.closure_bound, 9.0);
}

TEST_F(StatsTest, GlobalClosureBoundSpansAllLabels) {
  // Full observed label graph of Fig 2 (extents PERSON=2, CITY=2,
  // PROPERTY=1, REGION=1, COUNTRY=1): reachable pairs weigh 23.
  EXPECT_DOUBLE_EQ(catalog_.stats().GlobalClosureBound(), 23.0);
}

TEST_F(StatsTest, NodeCountsMatchExtents) {
  EXPECT_EQ(catalog_.stats().NodeCount("PERSON"), 2u);
  EXPECT_EQ(catalog_.stats().NodeCount("COUNTRY"), 1u);
  EXPECT_EQ(catalog_.stats().total_nodes(), 7u);
}

TEST_F(StatsTest, EstimatorCapsClosureByScheduleBound) {
  // Without the bound the closure estimate would be min(4 * 4, 4 * 3)
  // = 12; the label-graph bound tightens it to 9.
  Estimator estimator(catalog_);
  RaExprPtr tc = RaExpr::TransitiveClosure(
      RaExpr::EdgeScan("isLocatedIn", "s", "t"), "s", "t");
  EXPECT_DOUBLE_EQ(estimator.Estimate(tc.get()).rows, 9.0);
}

TEST_F(StatsTest, EstimatorCapsClosureOverForwardEdgeUnion) {
  // Chain a -e-> b -f-> c: the union body has 2 rows and 2x2 endpoint
  // NDVs (uncapped estimate min(2 * 4, 4) = 4), but only 3 label pairs
  // are reachable in the whole label graph, so the closure of e|f is
  // capped at 3 (the exact TC size).
  PropertyGraph g;
  NodeId a = g.AddNode("A");
  NodeId b = g.AddNode("B");
  NodeId c = g.AddNode("C");
  (void)g.AddEdge(a, "e", b);
  (void)g.AddEdge(b, "f", c);
  g.Finalize();
  Catalog catalog(g);
  EXPECT_DOUBLE_EQ(catalog.stats().GlobalClosureBound(), 3.0);
  Estimator estimator(catalog);
  RaExprPtr body = RaExpr::Union(RaExpr::EdgeScan("e", "s", "t"),
                                 RaExpr::EdgeScan("f", "s", "t"));
  RaExprPtr tc = RaExpr::TransitiveClosure(body, "s", "t");
  EXPECT_DOUBLE_EQ(estimator.Estimate(tc.get()).rows, 3.0);
}

TEST_F(StatsTest, ExpiredDeadlineDegradesWithoutCaching) {
  GraphStatistics stats(graph_);
  Deadline expired = Deadline::AfterMillis(1);
  while (!expired.Expired()) {
  }
  // The poller is amortized (2^16 stride), so tiny tables complete even
  // when expired — what must hold is that a later call with a live
  // deadline returns full statistics (no partial result was cached).
  (void)stats.EdgeFor("isLocatedIn", expired);
  EXPECT_EQ(stats.EdgeFor("isLocatedIn").rows, 4u);
}

}  // namespace
}  // namespace gqopt

// Randomized property suite for Theorem 1 (soundness and completeness of
// the schema-based rewriting): on randomly generated schemas, conforming
// databases and path expressions, the rewritten query must return exactly
// the same result set as the original — on both engines. Also checks that
// the simplification rules R1-R5 are semantics-preserving on arbitrary
// (not necessarily conforming) graphs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/path_parser.h"
#include "api/stages.h"  // white-box stage access
#include "core/simplifier.h"
#include "eval/graph_engine.h"
#include "eval/path_eval.h"
#include "graph/consistency.h"
#include "ra/catalog.h"
#include "ra/executor.h"
#include "util/rng.h"

namespace gqopt {
namespace {

// ---- Random generators -----------------------------------------------------

GraphSchema RandomSchema(Rng* rng) {
  GraphSchema schema;
  size_t num_labels = 3 + rng->Uniform(3);
  std::vector<std::string> labels;
  for (size_t i = 0; i < num_labels; ++i) {
    labels.push_back("L" + std::to_string(i));
    schema.AddNodeLabel(labels.back());
  }
  size_t num_edges = 4 + rng->Uniform(4);
  for (size_t i = 0; i < num_edges; ++i) {
    std::string edge = "e" + std::to_string(i);
    size_t triples = 1 + rng->Uniform(3);
    for (size_t t = 0; t < triples; ++t) {
      schema.AddEdge(rng->Pick(labels), edge, rng->Pick(labels));
    }
  }
  return schema;
}

PropertyGraph RandomConformingGraph(const GraphSchema& schema, Rng* rng) {
  PropertyGraph graph;
  std::vector<std::vector<NodeId>> extents(schema.node_labels().size());
  for (size_t l = 0; l < schema.node_labels().size(); ++l) {
    size_t count = 2 + rng->Uniform(6);
    for (size_t i = 0; i < count; ++i) {
      extents[l].push_back(graph.AddNode(schema.node_labels()[l]));
    }
  }
  auto label_index = [&](const std::string& label) {
    for (size_t l = 0; l < schema.node_labels().size(); ++l) {
      if (schema.node_labels()[l] == label) return l;
    }
    return size_t{0};
  };
  for (const BasicTriple& triple : schema.triples()) {
    const auto& sources = extents[label_index(triple.source_label)];
    const auto& targets = extents[label_index(triple.target_label)];
    size_t count = rng->Uniform(12);
    for (size_t i = 0; i < count; ++i) {
      (void)graph.AddEdge(rng->Pick(sources), triple.edge_label,
                          rng->Pick(targets));
    }
  }
  graph.Finalize();
  return graph;
}

PathExprPtr RandomExpr(const GraphSchema& schema, Rng* rng, int depth) {
  const std::vector<std::string>& edges = schema.edge_labels();
  if (depth <= 0 || rng->Chance(0.35)) {
    const std::string& label = rng->Pick(edges);
    return rng->Chance(0.2) ? PathExpr::Reverse(label)
                            : PathExpr::Edge(label);
  }
  switch (rng->Uniform(7)) {
    case 0:
      return PathExpr::Concat(RandomExpr(schema, rng, depth - 1),
                              RandomExpr(schema, rng, depth - 1));
    case 1:
      return PathExpr::Union(RandomExpr(schema, rng, depth - 1),
                             RandomExpr(schema, rng, depth - 1));
    case 2:
      return PathExpr::Conjunction(RandomExpr(schema, rng, depth - 1),
                                   RandomExpr(schema, rng, depth - 1));
    case 3:
      return PathExpr::BranchRight(RandomExpr(schema, rng, depth - 1),
                                   RandomExpr(schema, rng, depth - 1));
    case 4:
      return PathExpr::BranchLeft(RandomExpr(schema, rng, depth - 1),
                                  RandomExpr(schema, rng, depth - 1));
    case 5:
      return PathExpr::Closure(RandomExpr(schema, rng, depth - 1));
    default:
      return PathExpr::Repeat(RandomExpr(schema, rng, depth - 1), 1,
                              1 + static_cast<int>(rng->Uniform(2)));
  }
}

std::vector<Edge> ResultPairs(const ResultSet& result) {
  std::vector<Edge> out;
  for (const auto& row : result.rows) {
    out.emplace_back(row[0], row[1]);
  }
  return out;
}

// ---- Theorem 1 end-to-end ----------------------------------------------------

class RewritePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewritePropertyTest, RewritePreservesSemantics) {
  Rng rng(GetParam());
  GraphSchema schema = RandomSchema(&rng);
  PropertyGraph graph = RandomConformingGraph(schema, &rng);
  ASSERT_TRUE(CheckConsistency(graph, schema).consistent());

  GraphEngine engine(graph);
  for (int i = 0; i < 8; ++i) {
    PathExprPtr expr = RandomExpr(schema, &rng, 3);
    Ucqt baseline = Ucqt::FromPath("x1", expr, "x2");

    auto rewritten = RewriteQuery(baseline, schema);
    ASSERT_TRUE(rewritten.ok())
        << expr->ToString() << ": " << rewritten.status().ToString();

    auto expected = EvalPath(graph, expr);
    ASSERT_TRUE(expected.ok()) << expr->ToString();

    auto actual = engine.Run(rewritten->query);
    ASSERT_TRUE(actual.ok()) << rewritten->query.ToString();
    EXPECT_EQ(ResultPairs(*actual), expected->pairs())
        << "expr: " << expr->ToString() << "\nrewritten: "
        << rewritten->query.ToString()
        << (rewritten->reverted ? " (reverted)" : "");

    if (rewritten->unsatisfiable) {
      EXPECT_TRUE(expected->empty()) << expr->ToString();
    }
  }
}

TEST_P(RewritePropertyTest, EnginesAgreeOnRewrittenQueries) {
  Rng rng(GetParam() * 7919 + 13);
  GraphSchema schema = RandomSchema(&rng);
  PropertyGraph graph = RandomConformingGraph(schema, &rng);
  Catalog catalog(graph);
  GraphEngine engine(graph);
  Executor executor(catalog);

  for (int i = 0; i < 5; ++i) {
    PathExprPtr expr = RandomExpr(schema, &rng, 3);
    Ucqt baseline = Ucqt::FromPath("x1", expr, "x2");
    auto rewritten = RewriteQuery(baseline, schema);
    ASSERT_TRUE(rewritten.ok());

    for (const Ucqt* query : {&baseline, &rewritten->query}) {
      auto graph_result = engine.Run(*query);
      ASSERT_TRUE(graph_result.ok()) << query->ToString();
      auto plan = UcqtToRa(*query);
      ASSERT_TRUE(plan.ok()) << query->ToString();
      auto table = executor.Run(OptimizePlan(*plan, catalog));
      ASSERT_TRUE(table.ok()) << query->ToString();
      Table sorted = *table;
      sorted.SortDistinct();
      ASSERT_EQ(sorted.rows(), graph_result->rows.size())
          << query->ToString();
      for (size_t r = 0; r < sorted.rows(); ++r) {
        EXPECT_EQ(sorted.At(r, 0), graph_result->rows[r][0]);
        EXPECT_EQ(sorted.At(r, 1), graph_result->rows[r][1]);
      }
    }
  }
}

TEST_P(RewritePropertyTest, SimplifierPreservesSemantics) {
  Rng rng(GetParam() * 104729 + 1);
  GraphSchema schema = RandomSchema(&rng);
  // Deliberately NOT schema-conforming: R1-R5 are schema-independent.
  PropertyGraph graph;
  std::vector<NodeId> nodes;
  for (size_t i = 0; i < 8; ++i) {
    nodes.push_back(graph.AddNode("N" + std::to_string(i % 3)));
  }
  for (const std::string& edge : schema.edge_labels()) {
    size_t count = rng.Uniform(10);
    for (size_t i = 0; i < count; ++i) {
      (void)graph.AddEdge(rng.Pick(nodes), edge, rng.Pick(nodes));
    }
  }
  graph.Finalize();

  for (int i = 0; i < 10; ++i) {
    PathExprPtr expr = RandomExpr(schema, &rng, 4);
    PathExprPtr simplified = SimplifyPath(DesugarRepeat(expr));
    auto lhs = EvalPath(graph, expr);
    auto rhs = EvalPath(graph, simplified);
    ASSERT_TRUE(lhs.ok() && rhs.ok());
    EXPECT_EQ(lhs->pairs(), rhs->pairs())
        << expr->ToString() << " vs " << simplified->ToString();
  }
}

TEST_P(RewritePropertyTest, AblationsPreserveSemantics) {
  Rng rng(GetParam() * 31 + 5);
  GraphSchema schema = RandomSchema(&rng);
  PropertyGraph graph = RandomConformingGraph(schema, &rng);
  GraphEngine engine(graph);

  RewriteOptions no_tc;
  no_tc.enable_tc_elimination = false;
  RewriteOptions no_annotations;
  no_annotations.enable_annotations = false;

  for (int i = 0; i < 5; ++i) {
    PathExprPtr expr = RandomExpr(schema, &rng, 3);
    auto expected = EvalPath(graph, expr);
    ASSERT_TRUE(expected.ok());
    for (const RewriteOptions* options : {&no_tc, &no_annotations}) {
      auto rewritten =
          RewriteQuery(Ucqt::FromPath("x1", expr, "x2"), schema, *options);
      ASSERT_TRUE(rewritten.ok());
      auto actual = engine.Run(rewritten->query);
      ASSERT_TRUE(actual.ok());
      EXPECT_EQ(ResultPairs(*actual), expected->pairs())
          << expr->ToString();
    }
  }
}

TEST_P(RewritePropertyTest, PrinterParserRoundTrip) {
  Rng rng(GetParam() * 613 + 7);
  GraphSchema schema = RandomSchema(&rng);
  for (int i = 0; i < 20; ++i) {
    PathExprPtr expr = RandomExpr(schema, &rng, 4);
    auto reparsed = ParsePathExpr(expr->ToString());
    ASSERT_TRUE(reparsed.ok())
        << expr->ToString() << ": " << reparsed.status().ToString();
    EXPECT_TRUE(PathExpr::Equals(expr, *reparsed))
        << expr->ToString() << " reparsed as " << (*reparsed)->ToString();
  }
}

TEST_P(RewritePropertyTest, CanonicalKeyMatchesStructuralEquality) {
  Rng rng(GetParam() * 127 + 3);
  GraphSchema schema = RandomSchema(&rng);
  std::vector<PathExprPtr> exprs;
  for (int i = 0; i < 12; ++i) {
    exprs.push_back(RandomExpr(schema, &rng, 3));
  }
  for (const PathExprPtr& a : exprs) {
    for (const PathExprPtr& b : exprs) {
      EXPECT_EQ(PathExpr::Equals(a, b),
                a->CanonicalKey() == b->CanonicalKey())
          << a->ToString() << " vs " << b->ToString();
    }
  }
}

TEST_P(RewritePropertyTest, RewrittenQueryStaysSatisfiableWhenResultsExist) {
  // Completeness from the other side: whenever the original query returns
  // rows, the rewriter must not have declared it unsatisfiable.
  Rng rng(GetParam() * 911 + 2);
  GraphSchema schema = RandomSchema(&rng);
  PropertyGraph graph = RandomConformingGraph(schema, &rng);
  for (int i = 0; i < 6; ++i) {
    PathExprPtr expr = RandomExpr(schema, &rng, 3);
    auto expected = EvalPath(graph, expr);
    ASSERT_TRUE(expected.ok());
    auto rewritten = RewriteQuery(Ucqt::FromPath("x1", expr, "x2"), schema);
    ASSERT_TRUE(rewritten.ok());
    if (!expected->empty()) {
      EXPECT_FALSE(rewritten->unsatisfiable) << expr->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewritePropertyTest,
                         ::testing::Range<uint64_t>(0, 24));

}  // namespace
}  // namespace gqopt

#include <gtest/gtest.h>

#include "graph/consistency.h"
#include "graph/graph_io.h"
#include "graph/property_graph.h"
#include "graph/schema_guard.h"
#include "test_fixtures.h"

namespace gqopt {
namespace {

using testing::Fig1Schema;
using testing::Fig2Graph;
using testing::kN1;
using testing::kN2;
using testing::kN3;
using testing::kN4;
using testing::kN5;
using testing::kN6;
using testing::kN7;

TEST(PropertyGraphTest, Fig2Shape) {
  PropertyGraph graph = Fig2Graph();
  // Example 2: seven nodes, nine edges.
  EXPECT_EQ(graph.num_nodes(), 7u);
  EXPECT_EQ(graph.num_edges(), 9u);
  EXPECT_EQ(graph.NodeLabel(kN2), "PERSON");
  EXPECT_EQ(graph.NodeLabel(kN7), "COUNTRY");
}

TEST(PropertyGraphTest, Properties) {
  PropertyGraph graph = Fig2Graph();
  auto name = graph.GetProperty(kN2, "name");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->AsString(), "John");
  auto age = graph.GetProperty(kN2, "age");
  ASSERT_TRUE(age.has_value());
  EXPECT_EQ(age->AsInt(), 28);
  EXPECT_FALSE(graph.GetProperty(kN2, "missing").has_value());
}

TEST(PropertyGraphTest, EdgesByLabelSorted) {
  PropertyGraph graph = Fig2Graph();
  const auto& located = graph.EdgesByLabel("isLocatedIn");
  ASSERT_EQ(located.size(), 4u);
  EXPECT_TRUE(std::is_sorted(located.begin(), located.end()));
  EXPECT_EQ(located[0], (Edge{kN1, kN6}));
  EXPECT_TRUE(graph.EdgesByLabel("unknown").empty());
}

TEST(PropertyGraphTest, ReverseEdges) {
  PropertyGraph graph = Fig2Graph();
  const auto& rev = graph.ReverseEdgesByLabel("owns");
  ASSERT_EQ(rev.size(), 1u);
  EXPECT_EQ(rev[0], (Edge{kN1, kN2}));  // (target, source)
}

TEST(PropertyGraphTest, NodesWithLabel) {
  PropertyGraph graph = Fig2Graph();
  EXPECT_EQ(graph.NodesWithLabel("PERSON"),
            (std::vector<NodeId>{kN2, kN3}));
  EXPECT_EQ(graph.NodesWithLabel("CITY"), (std::vector<NodeId>{kN4, kN6}));
  EXPECT_TRUE(graph.NodesWithLabel("nope").empty());
  EXPECT_TRUE(graph.NodeHasLabel(kN5, "REGION"));
  EXPECT_FALSE(graph.NodeHasLabel(kN5, "CITY"));
}

TEST(PropertyGraphTest, DuplicateEdgesDeduplicated) {
  PropertyGraph graph;
  NodeId a = graph.AddNode("A");
  NodeId b = graph.AddNode("B");
  ASSERT_TRUE(graph.AddEdge(a, "e", b).ok());
  ASSERT_TRUE(graph.AddEdge(a, "e", b).ok());
  EXPECT_EQ(graph.EdgesByLabel("e").size(), 1u);
}

TEST(PropertyGraphTest, EdgeEndpointValidation) {
  PropertyGraph graph;
  graph.AddNode("A");
  Status st = graph.AddEdge(0, "e", 5);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST(ConsistencyTest, Fig2ConformsToFig1) {
  // Paper Example 3.
  ConsistencyReport report = CheckConsistency(Fig2Graph(), Fig1Schema());
  EXPECT_TRUE(report.consistent())
      << (report.violations.empty() ? "" : report.violations[0].detail);
}

TEST(ConsistencyTest, DetectsUnknownNodeLabel) {
  PropertyGraph graph;
  graph.AddNode("ALIEN");
  ConsistencyReport report = CheckConsistency(graph, Fig1Schema());
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].kind,
            ConsistencyViolation::Kind::kUnknownNodeLabel);
}

TEST(ConsistencyTest, DetectsUnknownEdgeLabel) {
  PropertyGraph graph;
  NodeId a = graph.AddNode("PERSON");
  ASSERT_TRUE(graph.AddEdge(a, "teleportsTo", a).ok());
  ConsistencyReport report = CheckConsistency(graph, Fig1Schema());
  ASSERT_FALSE(report.consistent());
  EXPECT_EQ(report.violations[0].kind,
            ConsistencyViolation::Kind::kUnknownEdgeLabel);
}

TEST(ConsistencyTest, DetectsInadmissibleEdge) {
  PropertyGraph graph;
  NodeId person = graph.AddNode("PERSON");
  NodeId country = graph.AddNode("COUNTRY");
  ASSERT_TRUE(graph.AddEdge(person, "livesIn", country).ok());  // needs CITY
  ConsistencyReport report = CheckConsistency(graph, Fig1Schema());
  ASSERT_FALSE(report.consistent());
  EXPECT_EQ(report.violations[0].kind,
            ConsistencyViolation::Kind::kEdgeNotAdmitted);
}

TEST(ConsistencyTest, DetectsUndeclaredProperty) {
  PropertyGraph graph;
  graph.AddNode("PERSON", {{"height", Value::Int(180)}});
  ConsistencyReport report = CheckConsistency(graph, Fig1Schema());
  ASSERT_FALSE(report.consistent());
  EXPECT_EQ(report.violations[0].kind,
            ConsistencyViolation::Kind::kUnknownProperty);
}

TEST(ConsistencyTest, DetectsPropertyTypeMismatch) {
  PropertyGraph graph;
  graph.AddNode("PERSON", {{"age", Value::String("old")}});
  ConsistencyReport report = CheckConsistency(graph, Fig1Schema());
  ASSERT_FALSE(report.consistent());
  EXPECT_EQ(report.violations[0].kind,
            ConsistencyViolation::Kind::kPropertyTypeMismatch);
}

TEST(ConsistencyTest, RespectsMaxViolations) {
  PropertyGraph graph;
  for (int i = 0; i < 10; ++i) graph.AddNode("ALIEN");
  ConsistencyReport report = CheckConsistency(graph, Fig1Schema(), 3);
  EXPECT_EQ(report.violations.size(), 3u);
}

TEST(GraphIoTest, RoundTrip) {
  PropertyGraph graph = Fig2Graph();
  std::string text = WriteGraphText(graph);
  auto reparsed = ReadGraphText(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->num_nodes(), graph.num_nodes());
  EXPECT_EQ(reparsed->num_edges(), graph.num_edges());
  EXPECT_EQ(WriteGraphText(*reparsed), text);
  // Typed properties survive.
  auto age = reparsed->GetProperty(kN2, "age");
  ASSERT_TRUE(age.has_value());
  EXPECT_EQ(age->type(), PropertyType::kInt);
  EXPECT_EQ(age->AsInt(), 28);
}

TEST(GraphIoTest, RejectsMalformed) {
  EXPECT_FALSE(ReadGraphText("X|weird\n").ok());
  EXPECT_FALSE(ReadGraphText("E|0|e\n").ok());
  EXPECT_FALSE(ReadGraphText("E|0|e|1\n").ok());  // nodes don't exist
  EXPECT_FALSE(ReadGraphText("N|A|oops\n").ok());
}

TEST(SchemaGuardTest, AcceptsConformingInsertions) {
  GraphSchema schema = Fig1Schema();
  PropertyGraph graph;
  SchemaGuard guard(schema, &graph);
  auto person = guard.AddNode(
      "PERSON", {{"name", Value::String("Ada")}, {"age", Value::Int(36)}});
  ASSERT_TRUE(person.ok()) << person.status().ToString();
  auto city = guard.AddNode("CITY", {{"name", Value::String("London")}});
  ASSERT_TRUE(city.ok());
  EXPECT_TRUE(guard.AddEdge(*person, "livesIn", *city).ok());
  EXPECT_TRUE(CheckConsistency(graph, schema).consistent());
}

TEST(SchemaGuardTest, RejectsUnknownNodeLabel) {
  GraphSchema schema = Fig1Schema();
  PropertyGraph graph;
  SchemaGuard guard(schema, &graph);
  auto result = guard.AddNode("ALIEN");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(graph.num_nodes(), 0u);  // nothing half-inserted
}

TEST(SchemaGuardTest, RejectsUndeclaredProperty) {
  GraphSchema schema = Fig1Schema();
  PropertyGraph graph;
  SchemaGuard guard(schema, &graph);
  auto result = guard.AddNode("PERSON", {{"height", Value::Int(180)}});
  EXPECT_FALSE(result.ok());
}

TEST(SchemaGuardTest, RejectsPropertyTypeMismatch) {
  GraphSchema schema = Fig1Schema();
  PropertyGraph graph;
  SchemaGuard guard(schema, &graph);
  auto result = guard.AddNode("PERSON", {{"age", Value::String("old")}});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("age"), std::string::npos);
}

TEST(SchemaGuardTest, RejectsInadmissibleEdge) {
  GraphSchema schema = Fig1Schema();
  PropertyGraph graph;
  SchemaGuard guard(schema, &graph);
  NodeId person = *guard.AddNode("PERSON");
  NodeId country = *guard.AddNode("COUNTRY");
  Status st = guard.AddEdge(person, "livesIn", country);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("livesIn"), std::string::npos);
  EXPECT_EQ(graph.num_edges(), 0u);
}

TEST(SchemaGuardTest, RejectsUnknownEdgeLabelAndBadIds) {
  GraphSchema schema = Fig1Schema();
  PropertyGraph graph;
  SchemaGuard guard(schema, &graph);
  NodeId person = *guard.AddNode("PERSON");
  EXPECT_EQ(guard.AddEdge(person, "teleportsTo", person).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(guard.AddEdge(person, "livesIn", 99).code(),
            StatusCode::kOutOfRange);
}

TEST(ValueTest, TypingFunction) {
  EXPECT_EQ(Value::String("x").type(), PropertyType::kString);
  EXPECT_EQ(Value::Int(1).type(), PropertyType::kInt);
  EXPECT_EQ(Value::Double(1.5).type(), PropertyType::kDouble);
  EXPECT_EQ(Value::Bool(true).type(), PropertyType::kBool);
  EXPECT_EQ(Value::Date(1000).type(), PropertyType::kDate);
}

TEST(ValueTest, DateIsNotPlainInt) {
  EXPECT_FALSE(Value::Date(5) == Value::Int(5));
  EXPECT_TRUE(Value::Int(5) == Value::Int(5));
}

}  // namespace
}  // namespace gqopt

// Differential tests for the incremental write path: executing against
// the delta OVERLAY (pending rows sealed next to the frozen base) must be
// BIT-IDENTICAL — same columns, same rows, same row order — to executing
// against the fully COMPACTED graph, across join strategies chosen by
// both planners, unseeded and seeded closures, top-k, at dop 1 and 4,
// with the plan cache on and off, and in low-memory mode. Plus the plan
// retention contract: a data mutation keeps unrelated cached plans
// serving by pointer identity, re-plans only past the drift threshold,
// and retained handles observe the freshly written rows.

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <string>
#include <vector>

#include "api/database.h"
#include "datasets/yago.h"

namespace gqopt {
namespace {

using api::Database;
using api::ExecOptions;
using api::Session;

// The same mutation batch, applied to any database over the same seed
// graph: ids assign identically, so overlay and compacted runs describe
// the same final graph. New persons marry into the existing graph and
// acquire property chains, extending both flat joins and the
// isMarriedTo+ fixpoint across the base/delta boundary.
void ApplyMutations(Database& db) {
  std::vector<NodeId> persons, properties;
  for (int i = 0; i < 6; ++i) persons.push_back(db.AddNode("PERSON"));
  for (int i = 0; i < 4; ++i) properties.push_back(db.AddNode("PROPERTY"));
  NodeId city = db.AddNode("CITY");
  for (size_t i = 0; i + 1 < persons.size(); ++i) {
    ASSERT_TRUE(
        db.AddEdge(persons[i], "isMarriedTo", persons[i + 1]).ok());
  }
  // Marry the new chain into the base graph (node 0 is a base person in
  // the YAGO generator) so the closure frontier crosses the boundary.
  ASSERT_TRUE(db.AddEdge(0, "isMarriedTo", persons[0]).ok());
  ASSERT_TRUE(db.AddEdge(persons.back(), "hasChild", persons[0]).ok());
  for (size_t i = 0; i < properties.size(); ++i) {
    ASSERT_TRUE(db.AddEdge(persons[i], "owns", properties[i]).ok());
    ASSERT_TRUE(db.AddEdge(properties[i], "isLocatedIn", city).ok());
  }
  ASSERT_TRUE(db.AddEdge(persons[0], "livesIn", city).ok());
}

const char* const kQueries[] = {
    // Flat composition: join-strategy coverage under both planners.
    "x1, x2 <- (x1, owns/isLocatedIn, x2)",
    // Unseeded closure: the overlay's incremental fixpoint fast path.
    "x1, x2 <- (x1, isMarriedTo+, x2)",
    // Seeded closure behind a join.
    "x1, x2 <- (x1, owns/isLocatedIn+, x2)",
    // Union with a closure branch.
    "x1, x2 <- (x1, isMarriedTo+/hasChild, x2) ++ (x1, livesIn, x2)",
    // Top-k: ordered operators with early termination.
    "x, y <- (x, isMarriedTo/hasChild, y) order by y desc, x limit 9",
};

TEST(DeltaDifferentialTest, OverlayIsBitIdenticalToCompactedExecution) {
  // Overlay database: every mutation stays pending (threshold far above
  // the batch), queries run base + seal.
  Database overlay(YagoSchema(), GenerateYago({.persons = 60, .seed = 9}));
  overlay.set_delta_enabled(true);
  overlay.set_delta_merge_rows(1u << 20);
  ApplyMutations(overlay);
  ASSERT_GT(overlay.delta_stats().pending_edges, 0u);

  // Compacted database: the same rows merged into the base graph.
  Database compacted(YagoSchema(), GenerateYago({.persons = 60, .seed = 9}));
  compacted.set_delta_enabled(true);
  compacted.set_delta_merge_rows(1u << 20);
  ApplyMutations(compacted);
  ASSERT_TRUE(compacted.Compact().ok());
  ASSERT_EQ(compacted.delta_stats().pending_edges, 0u);

  for (PlannerKind planner : {PlannerKind::kDp, PlannerKind::kGreedy}) {
    for (int dop : {1, 4}) {
      for (bool cache : {false, true}) {
        for (bool low_memory : {false, true}) {
          ExecOptions options;
          options.planner = planner;
          options.dop = dop;
          options.use_plan_cache = cache;
          options.low_memory = low_memory;
          options.timeout_ms = 0;  // correctness sweep, no deadline
          Session overlay_session(overlay, options);
          Session compacted_session(compacted, options);
          for (const char* query : kQueries) {
            SCOPED_TRACE(std::string(query) + " planner=" +
                         (planner == PlannerKind::kDp ? "dp" : "greedy") +
                         " dop=" + std::to_string(dop) +
                         " cache=" + std::to_string(cache) +
                         " low_mem=" + std::to_string(low_memory));
            auto live = overlay_session.Query(query);
            ASSERT_TRUE(live.ok()) << live.status().ToString();
            auto exact = compacted_session.Query(query);
            ASSERT_TRUE(exact.ok()) << exact.status().ToString();
            // data() compares raw row-major storage: rows AND row order.
            EXPECT_EQ(live->table.columns(), exact->table.columns());
            EXPECT_EQ(live->table.data(), exact->table.data());
          }
        }
      }
    }
  }
}

TEST(DeltaDifferentialTest, CompactionPreservesAnswersMidStream) {
  // One database, queried before and after its own compaction: the
  // visible rows must not move when the representation changes.
  Database db(YagoSchema(), GenerateYago({.persons = 50, .seed = 21}));
  db.set_delta_enabled(true);
  db.set_delta_merge_rows(1u << 20);
  ApplyMutations(db);
  Session session(db);
  std::vector<std::vector<std::vector<NodeId>>> before;
  for (const char* query : kQueries) {
    auto result = session.Query(query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    before.push_back(result->SortedRows());
  }
  ASSERT_TRUE(db.Compact().ok());
  for (size_t q = 0; q < std::size(kQueries); ++q) {
    auto result = session.Query(kQueries[q]);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->SortedRows(), before[q]) << kQueries[q];
  }
}

TEST(DeltaDifferentialTest, DataMutationRetainsUnrelatedCachedPlans) {
  Database db(YagoSchema(), GenerateYago({.persons = 50, .seed = 33}));
  db.set_plan_cache_enabled(true);
  db.set_delta_enabled(true);
  db.set_delta_merge_rows(1u << 20);
  Session session(db);
  const std::string text = "x1, x2 <- (x1, owns/isLocatedIn, x2)";

  bool hit = true;
  auto first = db.Prepare(text, session.options(), &hit);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(hit);

  // A write against labels the plan never scans: the cached entry keeps
  // serving without a re-plan — the acceptance assertion is pointer
  // identity, the same shared PreparedQuery object.
  NodeId a = db.AddNode("PERSON");
  ASSERT_TRUE(db.AddEdge(0, "isMarriedTo", a).ok());
  auto again = db.Prepare(text, session.options(), &hit);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(first->get(), again->get());
  EXPECT_GE(db.plan_cache_stats().entries, 1u);
  // The schema generation did not move, so the handle itself still
  // executes (against the re-resolved snapshot).
  EXPECT_TRUE((*first)->Execute(session).ok());
}

TEST(DeltaDifferentialTest, CardinalityDriftPastThresholdReplans) {
  Database db(YagoSchema(), GenerateYago({.persons = 30, .seed = 35}));
  db.set_plan_cache_enabled(true);
  db.set_delta_enabled(true);
  db.set_delta_merge_rows(1u << 20);
  db.set_plan_drift_threshold(2.0);
  Session session(db);
  const std::string text = "x1, x2 <- (x1, owns/isLocatedIn, x2)";

  bool hit = true;
  auto first = db.Prepare(text, session.options(), &hit);
  ASSERT_TRUE(first.ok());
  size_t owns_rows = db.catalog().stats().EdgeFor("owns").rows;
  ASSERT_GT(owns_rows, 0u);

  // Stay under the 2x drift ratio: still a hit.
  NodeId person = db.AddNode("PERSON");
  NodeId property = db.AddNode("PROPERTY");
  ASSERT_TRUE(db.AddEdge(person, "owns", property).ok());
  ASSERT_TRUE(db.Prepare(text, session.options(), &hit).ok());
  EXPECT_TRUE(hit);

  // Blow past it: fresh owns rows until the table more than doubles.
  for (size_t i = 0; i <= owns_rows; ++i) {
    NodeId p = db.AddNode("PERSON");
    NodeId q = db.AddNode("PROPERTY");
    ASSERT_TRUE(db.AddEdge(p, "owns", q).ok());
  }
  auto replanned = db.Prepare(text, session.options(), &hit);
  ASSERT_TRUE(replanned.ok());
  EXPECT_FALSE(hit) << "estimates drifted past the threshold: must re-plan";
  EXPECT_NE(first->get(), replanned->get());
}

TEST(DeltaDifferentialTest, RetainedHandleObservesFreshRows) {
  Database db(YagoSchema(), GenerateYago({.persons = 30, .seed = 41}));
  db.set_plan_cache_enabled(true);
  db.set_delta_enabled(true);
  db.set_delta_merge_rows(1u << 20);
  Session session(db);
  auto prepared = session.Prepare("x1, x2 <- (x1, owns, x2)");
  ASSERT_TRUE(prepared.ok());
  auto before = (*prepared)->Execute(session);
  ASSERT_TRUE(before.ok());

  NodeId person = db.AddNode("PERSON");
  NodeId property = db.AddNode("PROPERTY");
  ASSERT_TRUE(db.AddEdge(person, "owns", property).ok());

  // Same handle, no re-prepare: the execution re-resolves the snapshot
  // and serves the row written after Prepare.
  auto after = (*prepared)->Execute(session);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->rows(), before->rows() + 1);
  std::vector<NodeId> fresh = {person, property};
  auto rows = after->SortedRows();
  EXPECT_NE(std::find(rows.begin(), rows.end(), fresh), rows.end());
}

TEST(DeltaDifferentialTest, SchemaGenerationStillInvalidatesEverything) {
  // The generation split's other half: Use() (a schema/dataset swap)
  // keeps full invalidation semantics even with delta mode on.
  Database db(YagoSchema(), GenerateYago({.persons = 30, .seed = 43}));
  db.set_plan_cache_enabled(true);
  db.set_delta_enabled(true);
  Session session(db);
  auto prepared = session.Prepare("x1, x2 <- (x1, owns/isLocatedIn, x2)");
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(db.AddEdge(0, "isMarriedTo", db.AddNode("PERSON")).ok());
  EXPECT_GT(db.delta_stats().pending_edges, 0u);

  db.Use(YagoSchema(), GenerateYago({.persons = 10, .seed = 44}));
  // Pending delta rows described the replaced dataset: discarded.
  EXPECT_EQ(db.delta_stats().pending_edges, 0u);
  EXPECT_EQ(db.plan_cache_stats().entries, 0u);
  auto stale = (*prepared)->Execute(session);
  ASSERT_FALSE(stale.ok());
  EXPECT_NE(stale.status().message().find("stale"), std::string::npos);
}

}  // namespace
}  // namespace gqopt

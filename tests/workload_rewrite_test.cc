// Snapshot regression test: the rewrite outcome of every workload query
// (revert flag, disjunct count, eliminated/total closures) is pinned so
// that changes to the simplifier / inference / merging / pruning pipeline
// surface as reviewable diffs. The pinned values reproduce the paper's
// aggregate claims: on YAGO exactly one query reverts and the closure is
// eliminated in 16 of 18 (§5.2, Tab 6); on LDBC exactly the five
// isLocatedIn+ queries lose their closure (§5.4) — our revert set is a
// superset of the paper's ten (DESIGN.md §5.3).

#include <gtest/gtest.h>

#include <map>

#include "api/stages.h"  // white-box stage access
#include "datasets/ldbc.h"
#include "datasets/workloads.h"
#include "datasets/yago.h"

namespace gqopt {
namespace {

struct Expected {
  const char* id;
  bool reverted;
  size_t disjuncts;
  size_t eliminated_closures;
  size_t total_closures;
};

void CheckWorkload(const std::vector<WorkloadQuery>& workload,
                   const GraphSchema& schema,
                   const std::vector<Expected>& expectations) {
  ASSERT_EQ(workload.size(), expectations.size());
  std::map<std::string, const WorkloadQuery*> by_id;
  for (const WorkloadQuery& wq : workload) by_id[wq.id] = &wq;
  for (const Expected& expected : expectations) {
    auto it = by_id.find(expected.id);
    ASSERT_NE(it, by_id.end()) << expected.id;
    auto query = ParseWorkloadQuery(*it->second);
    ASSERT_TRUE(query.ok()) << expected.id;
    auto result = RewriteQuery(*query, schema);
    ASSERT_TRUE(result.ok()) << expected.id << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->reverted, expected.reverted) << expected.id;
    EXPECT_EQ(result->query.disjuncts.size(), expected.disjuncts)
        << expected.id << ": " << result->query.ToString();
    EXPECT_EQ(result->stats.eliminated_closures(),
              expected.eliminated_closures)
        << expected.id;
    EXPECT_EQ(result->stats.closures.size(), expected.total_closures)
        << expected.id;
    EXPECT_FALSE(result->unsatisfiable) << expected.id;
  }
}

TEST(WorkloadRewriteSnapshot, Yago) {
  // {id, reverted, disjuncts, eliminated closures, total closures}
  CheckWorkload(YagoWorkload(), YagoSchema(),
                {
                    {"Y1", false, 1, 1, 2},
                    {"Y2", false, 1, 1, 2},
                    {"Y3", false, 1, 1, 2},
                    {"Y4", false, 1, 1, 2},
                    {"Y5", false, 1, 1, 2},
                    {"Y6", false, 3, 1, 1},
                    {"Y7", true, 1, 0, 1},
                    {"Y8", false, 3, 1, 1},
                    {"Y9", false, 3, 1, 1},
                    {"Y10", false, 3, 1, 1},
                    {"Y11", false, 3, 1, 1},
                    {"Y12", false, 1, 1, 2},
                    {"Y13", false, 1, 0, 1},
                    {"Y14", false, 1, 1, 2},
                    {"Y15", false, 3, 1, 1},
                    {"Y16", false, 3, 1, 1},
                    {"Y17", false, 3, 1, 2},
                    {"Y18", false, 3, 1, 1},
                });
}

TEST(WorkloadRewriteSnapshot, Ldbc) {
  CheckWorkload(LdbcWorkload(), LdbcSchema(),
                {
                    {"IC1", true, 1, 0, 0},
                    {"IC2", true, 1, 0, 0},
                    {"IC6", true, 1, 0, 0},
                    {"IC7", true, 1, 0, 0},
                    {"IC8", true, 1, 0, 0},
                    {"IC9", true, 1, 0, 0},
                    {"IC11", true, 1, 0, 0},
                    {"IC12", true, 1, 0, 1},
                    {"IC13", true, 1, 0, 1},
                    {"IC14", true, 1, 0, 1},
                    {"Y1", false, 1, 1, 3},
                    {"Y2", false, 1, 1, 2},
                    {"Y3", false, 1, 1, 3},
                    {"Y4", false, 2, 1, 2},
                    {"Y5", true, 1, 0, 1},
                    {"Y6", false, 1, 1, 3},
                    {"Y7", true, 1, 0, 1},
                    {"Y8", true, 1, 0, 1},
                    {"IS2", true, 1, 0, 1},
                    {"IS6", true, 1, 0, 1},
                    {"IS7", true, 1, 0, 0},
                    {"BI11", true, 1, 0, 0},
                    {"BI10", true, 1, 0, 1},
                    {"BI3", true, 1, 0, 1},
                    {"BI9", true, 1, 0, 1},
                    {"BI20", true, 1, 0, 1},
                    {"LSQB1", true, 1, 0, 1},
                    {"LSQB4", true, 1, 0, 0},
                    {"LSQB5", true, 1, 0, 0},
                    {"LSQB6", true, 1, 0, 0},
                });
}

}  // namespace
}  // namespace gqopt

// Optimizer rule tests: identity-projection removal, Distinct collapsing,
// join-cluster reordering and fixpoint seeding.

#include <gtest/gtest.h>

#include <functional>

#include "query/query_parser.h"
#include "ra/catalog.h"
#include "ra/executor.h"
#include "ra/explain.h"
#include "api/stages.h"  // white-box stage access
#include "test_fixtures.h"
#include "util/rng.h"

namespace gqopt {
namespace {

size_t CountOp(const RaExprPtr& e, RaOp op) {
  if (!e) return 0;
  size_t n = e->op() == op ? 1 : 0;
  return n + CountOp(e->left(), op) + CountOp(e->right(), op) +
         (e->op() == RaOp::kTransitiveClosure && e->seed()
              ? CountOp(e->seed(), op)
              : 0);
}

bool HasSeededClosure(const RaExprPtr& e) {
  if (!e) return false;
  if (e->op() == RaOp::kTransitiveClosure &&
      e->seed_side() != SeedSide::kNone) {
    return true;
  }
  return HasSeededClosure(e->left()) || HasSeededClosure(e->right());
}

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : graph_(testing::Fig2Graph()), catalog_(graph_) {}

  PropertyGraph graph_;
  Catalog catalog_;
};

TEST_F(OptimizerTest, RemovesIdentityProjection) {
  RaExprPtr scan = RaExpr::EdgeScan("owns", "a", "b");
  RaExprPtr plan =
      RaExpr::Project(scan, {{"a", "a"}, {"b", "b"}});
  RaExprPtr optimized = OptimizePlan(plan, catalog_);
  EXPECT_EQ(optimized.get(), scan.get());
}

TEST_F(OptimizerTest, KeepsRenamingProjection) {
  RaExprPtr plan = RaExpr::Project(RaExpr::EdgeScan("owns", "a", "b"),
                                   {{"a", "x"}, {"b", "b"}});
  RaExprPtr optimized = OptimizePlan(plan, catalog_);
  EXPECT_EQ(optimized->op(), RaOp::kProject);
}

TEST_F(OptimizerTest, KeepsReorderingProjection) {
  // Same names but swapped order is NOT an identity.
  RaExprPtr plan = RaExpr::Project(RaExpr::EdgeScan("owns", "a", "b"),
                                   {{"b", "b"}, {"a", "a"}});
  RaExprPtr optimized = OptimizePlan(plan, catalog_);
  EXPECT_EQ(optimized->op(), RaOp::kProject);
}

TEST_F(OptimizerTest, CollapsesNestedDistinct) {
  RaExprPtr plan = RaExpr::Distinct(
      RaExpr::Distinct(RaExpr::EdgeScan("owns", "a", "b")));
  RaExprPtr optimized = OptimizePlan(plan, catalog_);
  EXPECT_EQ(CountOp(optimized, RaOp::kDistinct), 1u);
}

TEST_F(OptimizerTest, CollapsesDistinctThroughIdentityProject) {
  RaExprPtr inner = RaExpr::Distinct(RaExpr::EdgeScan("owns", "a", "b"));
  RaExprPtr plan = RaExpr::Distinct(
      RaExpr::Project(inner, {{"a", "a"}, {"b", "b"}}));
  RaExprPtr optimized = OptimizePlan(plan, catalog_);
  EXPECT_EQ(CountOp(optimized, RaOp::kDistinct), 1u);
}

TEST_F(OptimizerTest, SeedsClosureJoinedOnSource) {
  RaExprPtr plan = RaExpr::Join(
      RaExpr::EdgeScan("owns", "x", "z"),
      RaExpr::TransitiveClosure(RaExpr::EdgeScan("isLocatedIn", "z", "y"),
                                "z", "y"));
  RaExprPtr optimized = OptimizePlan(plan, catalog_);
  EXPECT_TRUE(HasSeededClosure(optimized)) << optimized->ToString();
}

TEST_F(OptimizerTest, SeedingCanBeDisabled) {
  RaExprPtr plan = RaExpr::Join(
      RaExpr::EdgeScan("owns", "x", "z"),
      RaExpr::TransitiveClosure(RaExpr::EdgeScan("isLocatedIn", "z", "y"),
                                "z", "y"));
  OptimizerOptions options;
  options.enable_fixpoint_seeding = false;
  RaExprPtr optimized = OptimizePlan(plan, catalog_, options);
  EXPECT_FALSE(HasSeededClosure(optimized));
}

TEST_F(OptimizerTest, DoesNotSeedDisconnectedClosure) {
  // The closure shares no column with the other conjunct.
  RaExprPtr plan = RaExpr::Join(
      RaExpr::EdgeScan("owns", "x", "z"),
      RaExpr::TransitiveClosure(RaExpr::EdgeScan("isLocatedIn", "p", "q"),
                                "p", "q"));
  RaExprPtr optimized = OptimizePlan(plan, catalog_);
  EXPECT_FALSE(HasSeededClosure(optimized));
}

TEST_F(OptimizerTest, AlreadySeededClosureIsLeftAlone) {
  RaExprPtr seed = RaExpr::NodeScan({"PROPERTY"}, "z");
  RaExprPtr tc = RaExpr::TransitiveClosure(
      RaExpr::EdgeScan("isLocatedIn", "z", "y"), "z", "y", seed,
      SeedSide::kSource);
  RaExprPtr plan = RaExpr::Join(RaExpr::EdgeScan("owns", "x", "z"), tc);
  RaExprPtr optimized = OptimizePlan(plan, catalog_);
  // Still exactly one closure, still source-seeded by the node scan.
  EXPECT_EQ(CountOp(optimized, RaOp::kTransitiveClosure), 1u);
}

TEST_F(OptimizerTest, OptimizationPreservesResults) {
  for (const char* text : {
           "x, y <- (x, owns/isLocatedIn+, y)",
           "x, y <- (x, livesIn/isLocatedIn/isLocatedIn, y)",
           "x, y <- (x, isLocatedIn+ , y), label(x) = PROPERTY",
           "y <- (y, livesIn/isLocatedIn+, m), (y, owns, z)",
           "x, y <- (x, (livesIn | owns)[isLocatedIn], y)",
       }) {
    auto query = ParseUcqt(text);
    ASSERT_TRUE(query.ok()) << text;
    auto plan = UcqtToRa(*query);
    ASSERT_TRUE(plan.ok()) << text;
    Executor executor(catalog_);
    auto raw = executor.Run(*plan);
    ASSERT_TRUE(raw.ok()) << text;
    for (bool seeding : {false, true}) {
      OptimizerOptions options;
      options.enable_fixpoint_seeding = seeding;
      auto optimized = executor.Run(OptimizePlan(*plan, catalog_, options));
      ASSERT_TRUE(optimized.ok()) << text;
      Table a = *raw;
      Table b = *optimized;
      a.SortDistinct();
      b.SortDistinct();
      EXPECT_EQ(a.data(), b.data()) << text << " seeding=" << seeding;
    }
  }
}

TEST_F(OptimizerTest, JoinReorderingKeepsColumns) {
  auto query = ParseUcqt(
      "x <- (x, owns, z), (z, isLocatedIn, c), (x, livesIn, c2)");
  ASSERT_TRUE(query.ok());
  auto plan = UcqtToRa(*query);
  ASSERT_TRUE(plan.ok());
  RaExprPtr optimized = OptimizePlan(*plan, catalog_);
  EXPECT_EQ(optimized->columns(), (*plan)->columns());
}

TEST_F(OptimizerTest, EstimatorOrdersSelectiveScansFirst) {
  // In a cluster {owns (1 row), isLocatedIn (4 rows)}, the greedy order
  // starts from the smaller relation; verify via the shape: left-most leaf
  // of the join tree is the owns scan.
  RaExprPtr plan = RaExpr::Join(
      RaExpr::EdgeScan("isLocatedIn", "z", "y"),
      RaExpr::EdgeScan("owns", "x", "z"));
  RaExprPtr optimized = OptimizePlan(plan, catalog_);
  const RaExpr* leftmost = optimized.get();
  while (leftmost->left()) leftmost = leftmost->left().get();
  EXPECT_EQ(leftmost->label(), "owns");
}

// ---- Physical properties and join-strategy annotation ---------------------

TEST_F(OptimizerTest, SortedPrefixPropagatesBottomUp) {
  RaExprPtr scan = RaExpr::EdgeScan("owns", "x", "y");
  EXPECT_EQ(scan->sorted_prefix(), 2u);
  EXPECT_EQ(RaExpr::NodeScan({"PERSON"}, "n")->sorted_prefix(), 1u);
  // Keeping the leading column (renamed or not) keeps prefix 1.
  EXPECT_EQ(RaExpr::Project(scan, {{"x", "x"}})->sorted_prefix(), 1u);
  EXPECT_EQ(RaExpr::Project(scan, {{"x", "u"}, {"y", "v"}})->sorted_prefix(),
            2u);
  // Reordering drops it.
  EXPECT_EQ(RaExpr::Project(scan, {{"y", "y"}, {"x", "x"}})->sorted_prefix(),
            0u);
  EXPECT_EQ(RaExpr::SelectEq(scan, "x", "y")->sorted_prefix(), 2u);
  EXPECT_EQ(RaExpr::Distinct(scan)->sorted_prefix(), 2u);
  EXPECT_EQ(RaExpr::Union(scan, scan)->sorted_prefix(), 0u);
  EXPECT_EQ(RaExpr::TransitiveClosure(scan, "x", "y")->sorted_prefix(), 2u);
}

TEST_F(OptimizerTest, AnnotatesOffsetJoin) {
  // Chain join: the right side is sorted on the single shared column.
  RaExprPtr plan = RaExpr::Join(RaExpr::EdgeScan("owns", "x", "z"),
                                RaExpr::EdgeScan("isLocatedIn", "z", "y"));
  RaExprPtr optimized = OptimizePlan(plan, catalog_);
  std::string explain = ExplainPlan(optimized, catalog_);
  EXPECT_NE(explain.find("[offset]"), std::string::npos) << explain;
}

TEST_F(OptimizerTest, AnnotatesMergeJoinOnMultiColumnKeys) {
  // Both sides sorted with the two shared columns leading: a shape the
  // bool-based detection could only hash (it required one shared column).
  RaExprPtr plan = RaExpr::Join(RaExpr::EdgeScan("owns", "x", "y"),
                                RaExpr::EdgeScan("livesIn", "x", "y"));
  RaExprPtr optimized = OptimizePlan(plan, catalog_);
  std::string explain = ExplainPlan(optimized, catalog_);
  EXPECT_NE(explain.find("[merge]"), std::string::npos) << explain;
}

TEST_F(OptimizerTest, ColumnDroppingProjectionStillJoinsViaOffset) {
  // Distinct(Project(keep leading column)) stays sorted under the prefix
  // model, so the join is annotated [offset] — the bool model lost
  // sortedness on projection and hashed this shape.
  RaExprPtr proj = RaExpr::Project(RaExpr::EdgeScan("isLocatedIn", "z", "w"),
                                   {{"z", "z"}});
  EXPECT_EQ(proj->sorted_prefix(), 1u);
  RaExprPtr plan = RaExpr::Join(RaExpr::EdgeScan("owns", "x", "z"),
                                RaExpr::Distinct(proj));
  RaExprPtr optimized = OptimizePlan(plan, catalog_);
  std::string explain = ExplainPlan(optimized, catalog_);
  EXPECT_NE(explain.find("[offset]"), std::string::npos) << explain;
}

TEST_F(OptimizerTest, HashFallbackPicksRadixBySize) {
  // Shared column is trailing on both sides: hash join. On the tiny
  // Fig 2 catalog the estimated build is small => flat; on a bulk graph
  // it crosses the radix threshold.
  RaExprPtr plan = RaExpr::Join(RaExpr::EdgeScan("owns", "x", "z"),
                                RaExpr::EdgeScan("livesIn", "y", "z"));
  std::string small = ExplainPlan(OptimizePlan(plan, catalog_), catalog_);
  EXPECT_NE(small.find("[flat-hash"), std::string::npos) << small;

  Rng rng(23);
  PropertyGraph big;
  for (size_t i = 0; i < 1000; ++i) big.AddNode("N");
  for (size_t i = 0; i < 48000; ++i) {
    (void)big.AddEdge(static_cast<NodeId>(rng.Uniform(1000)), "owns",
                      static_cast<NodeId>(rng.Uniform(1000)));
    (void)big.AddEdge(static_cast<NodeId>(rng.Uniform(1000)), "livesIn",
                      static_cast<NodeId>(rng.Uniform(1000)));
  }
  Catalog big_catalog(big);
  std::string large = ExplainPlan(OptimizePlan(plan, big_catalog),
                                  big_catalog);
  EXPECT_NE(large.find("[radix-hash"), std::string::npos) << large;
}

TEST_F(OptimizerTest, AnnotatesParallelismHint) {
  RaExprPtr plan = RaExpr::Join(RaExpr::EdgeScan("owns", "x", "z"),
                                RaExpr::EdgeScan("livesIn", "y", "z"));
  Rng rng(29);
  PropertyGraph big;
  for (size_t i = 0; i < 1000; ++i) big.AddNode("N");
  for (size_t i = 0; i < 48000; ++i) {
    (void)big.AddEdge(static_cast<NodeId>(rng.Uniform(1000)), "owns",
                      static_cast<NodeId>(rng.Uniform(1000)));
    (void)big.AddEdge(static_cast<NodeId>(rng.Uniform(1000)), "livesIn",
                      static_cast<NodeId>(rng.Uniform(1000)));
  }
  Catalog big_catalog(big);

  // Planning for dop 8 over inputs above the parallel row threshold:
  // the hash join is annotated with the predicted parallelism, printed
  // inside the strategy bracket.
  OptimizerOptions parallel;
  parallel.dop = 8;
  std::string hinted =
      ExplainPlan(OptimizePlan(plan, big_catalog, parallel), big_catalog);
  EXPECT_NE(hinted.find("[radix-hash p=8]"), std::string::npos) << hinted;

  // Serial planning (the default without GQOPT_DOP) never prints p=.
  OptimizerOptions serial;
  serial.dop = 1;
  std::string unhinted =
      ExplainPlan(OptimizePlan(plan, big_catalog, serial), big_catalog);
  EXPECT_EQ(unhinted.find("p="), std::string::npos) << unhinted;

  // Below the row threshold the optimizer predicts serial execution even
  // when planning for dop 8 (the tiny Fig 2 catalog).
  std::string small =
      ExplainPlan(OptimizePlan(plan, catalog_, parallel), catalog_);
  EXPECT_EQ(small.find("p="), std::string::npos) << small;
}

TEST_F(OptimizerTest, ExplainShowsOrderingProperty) {
  RaExprPtr plan = RaExpr::EdgeScan("owns", "x", "y");
  std::string explain = ExplainPlan(plan, catalog_);
  EXPECT_NE(explain.find("sorted = 2"), std::string::npos) << explain;
}

TEST_F(OptimizerTest, FusesLimitOverSortIntoTopK) {
  RaExprPtr plan = RaExpr::Limit(
      RaExpr::Sort(RaExpr::EdgeScan("owns", "x", "y"),
                   {{"y", true}}),
      5);
  RaExprPtr optimized = OptimizePlan(plan, catalog_);
  EXPECT_EQ(optimized->op(), RaOp::kTopK);
  EXPECT_EQ(optimized->limit(), 5u);
  ASSERT_EQ(optimized->sort_keys().size(), 1u);
  EXPECT_EQ(optimized->sort_keys()[0].column, "y");
  EXPECT_TRUE(optimized->sort_keys()[0].descending);
  EXPECT_EQ(CountOp(optimized, RaOp::kSort), 0u);
}

TEST_F(OptimizerTest, ElidesSortWhenOrderAlreadyDelivered) {
  // EdgeScan output is fully sorted ascending on (x, y): an ascending
  // Sort on the leading prefix is a no-op and disappears.
  RaExprPtr scan = RaExpr::EdgeScan("owns", "x", "y");
  RaExprPtr optimized =
      OptimizePlan(RaExpr::Sort(scan, {{"x", false}}), catalog_);
  EXPECT_EQ(optimized.get(), scan.get());
  // A descending request is NOT delivered; the Sort must stay.
  RaExprPtr kept =
      OptimizePlan(RaExpr::Sort(scan, {{"x", true}}), catalog_);
  EXPECT_EQ(kept->op(), RaOp::kSort);
}

TEST_F(OptimizerTest, DowngradesTopKToLimitWhenOrderDelivered) {
  RaExprPtr scan = RaExpr::EdgeScan("owns", "x", "y");
  RaExprPtr optimized = OptimizePlan(
      RaExpr::TopK(scan, {{"x", false}, {"y", false}}, 3), catalog_);
  EXPECT_EQ(optimized->op(), RaOp::kLimit);
  EXPECT_EQ(optimized->limit(), 3u);
  EXPECT_EQ(optimized->left().get(), scan.get());
}

TEST_F(OptimizerTest, ExplainAnnotatesTopK) {
  RaExprPtr plan = RaExpr::Limit(
      RaExpr::Sort(RaExpr::EdgeScan("owns", "x", "y"),
                   {{"y", true}, {"x", false}}),
      4);
  std::string explain =
      ExplainPlan(OptimizePlan(plan, catalog_), catalog_);
  EXPECT_NE(explain.find("topk k=4"), std::string::npos) << explain;
  EXPECT_NE(explain.find("keys=y desc,x"), std::string::npos) << explain;
}

}  // namespace
}  // namespace gqopt

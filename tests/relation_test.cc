#include <gtest/gtest.h>

#include "eval/binary_relation.h"

namespace gqopt {
namespace {

BinaryRelation Rel(std::vector<Edge> pairs) {
  return BinaryRelation::FromPairs(std::move(pairs));
}

TEST(BinaryRelationTest, FromPairsSortsAndDedups) {
  BinaryRelation r = Rel({{2, 1}, {1, 2}, {2, 1}});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.pairs()[0], (Edge{1, 2}));
  EXPECT_EQ(r.pairs()[1], (Edge{2, 1}));
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Contains({1, 3}));
}

TEST(BinaryRelationTest, Compose) {
  BinaryRelation a = Rel({{1, 2}, {2, 3}});
  BinaryRelation b = Rel({{2, 5}, {3, 6}, {9, 9}});
  auto c = BinaryRelation::Compose(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->pairs(), (std::vector<Edge>{{1, 5}, {2, 6}}));
}

TEST(BinaryRelationTest, ComposeWithEmpty) {
  BinaryRelation a = Rel({{1, 2}});
  auto c = BinaryRelation::Compose(a, BinaryRelation());
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->empty());
}

TEST(BinaryRelationTest, SetOperations) {
  BinaryRelation a = Rel({{1, 1}, {2, 2}});
  BinaryRelation b = Rel({{2, 2}, {3, 3}});
  EXPECT_EQ(BinaryRelation::Union(a, b).size(), 3u);
  EXPECT_EQ(BinaryRelation::Intersect(a, b).pairs(),
            (std::vector<Edge>{{2, 2}}));
  EXPECT_EQ(BinaryRelation::Difference(a, b).pairs(),
            (std::vector<Edge>{{1, 1}}));
}

TEST(BinaryRelationTest, Reverse) {
  BinaryRelation r = Rel({{1, 2}, {3, 4}});
  EXPECT_EQ(r.Reverse().pairs(), (std::vector<Edge>{{2, 1}, {4, 3}}));
  // Reverse is an involution.
  EXPECT_EQ(r.Reverse().Reverse(), r);
}

TEST(BinaryRelationTest, TransitiveClosureChain) {
  BinaryRelation r = Rel({{1, 2}, {2, 3}, {3, 4}});
  auto tc = BinaryRelation::TransitiveClosure(r);
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(tc->pairs(), (std::vector<Edge>{{1, 2},
                                            {1, 3},
                                            {1, 4},
                                            {2, 3},
                                            {2, 4},
                                            {3, 4}}));
}

TEST(BinaryRelationTest, TransitiveClosureCycle) {
  BinaryRelation r = Rel({{1, 2}, {2, 1}});
  auto tc = BinaryRelation::TransitiveClosure(r);
  ASSERT_TRUE(tc.ok());
  // All four pairs, including the loops via the cycle.
  EXPECT_EQ(tc->pairs(),
            (std::vector<Edge>{{1, 1}, {1, 2}, {2, 1}, {2, 2}}));
}

TEST(BinaryRelationTest, TransitiveClosureIsIdempotent) {
  BinaryRelation r = Rel({{1, 2}, {2, 3}, {3, 1}, {4, 4}});
  auto tc1 = BinaryRelation::TransitiveClosure(r);
  ASSERT_TRUE(tc1.ok());
  auto tc2 = BinaryRelation::TransitiveClosure(*tc1);
  ASSERT_TRUE(tc2.ok());
  EXPECT_EQ(*tc1, *tc2);
}

TEST(BinaryRelationTest, TransitiveClosureContainsBaseAndComposition) {
  BinaryRelation r = Rel({{0, 1}, {1, 5}, {5, 0}, {2, 2}});
  auto tc = BinaryRelation::TransitiveClosure(r);
  ASSERT_TRUE(tc.ok());
  // TC ⊇ R and TC ∘ R ⊆ TC.
  for (const Edge& e : r.pairs()) EXPECT_TRUE(tc->Contains(e));
  auto comp = BinaryRelation::Compose(*tc, r);
  ASSERT_TRUE(comp.ok());
  for (const Edge& e : comp->pairs()) EXPECT_TRUE(tc->Contains(e));
}

TEST(BinaryRelationTest, DeadlinesAbortLongClosures) {
  // A large cyclic relation with an already-expired deadline must abort.
  std::vector<Edge> pairs;
  for (NodeId i = 0; i < 2000; ++i) {
    pairs.push_back({i, (i + 1) % 2000});
    pairs.push_back({i, (i + 7) % 2000});
  }
  BinaryRelation r = Rel(std::move(pairs));
  Deadline expired = Deadline::AfterMillis(1);
  while (!expired.Expired()) {
  }
  auto tc = BinaryRelation::TransitiveClosure(r, expired);
  ASSERT_FALSE(tc.ok());
  EXPECT_EQ(tc.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(BinaryRelationTest, Filters) {
  BinaryRelation r = Rel({{1, 2}, {2, 3}, {3, 4}});
  EXPECT_EQ(r.FilterSource([](NodeId n) { return n >= 2; }).size(), 2u);
  EXPECT_EQ(r.FilterTarget([](NodeId n) { return n == 3; }).pairs(),
            (std::vector<Edge>{{2, 3}}));
}

TEST(BinaryRelationTest, SemiJoins) {
  BinaryRelation r = Rel({{1, 2}, {2, 3}, {3, 4}});
  EXPECT_EQ(r.SemiJoinSource({2, 3}).pairs(),
            (std::vector<Edge>{{2, 3}, {3, 4}}));
  EXPECT_EQ(r.SemiJoinTarget({2}).pairs(), (std::vector<Edge>{{1, 2}}));
  EXPECT_TRUE(r.SemiJoinSource({}).empty());
}

TEST(BinaryRelationTest, SourcesTargets) {
  BinaryRelation r = Rel({{5, 2}, {5, 3}, {1, 2}});
  EXPECT_EQ(r.Sources(), (std::vector<NodeId>{1, 5}));
  EXPECT_EQ(r.Targets(), (std::vector<NodeId>{2, 3}));
}

}  // namespace
}  // namespace gqopt

// Differential tests for partition-parallel execution: every operator
// must produce BIT-IDENTICAL tables at dop=1 and dop=N — same rows, same
// row order, same sort-prefix claim — across join strategies, seeded and
// unseeded closures, selections and projections, including empty and
// single-partition inputs. The parallel row threshold is lowered to 0 so
// small (fast) inputs still exercise the parallel code paths.

#include <gtest/gtest.h>

#include <vector>

#include "eval/binary_relation.h"
#include "graph/property_graph.h"
#include "ra/catalog.h"
#include "ra/executor.h"
#include "api/stages.h"  // white-box stage access
#include "ra/ra_expr.h"
#include "util/exec_context.h"
#include "util/radix.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gqopt {
namespace {

// A pool with enough workers for dop=4 even on single-core CI boxes.
ThreadPool& TestPool() {
  static ThreadPool pool(3);
  return pool;
}

ExecContext At(int dop) {
  ExecContext ctx;
  ctx.dop = dop;
  ctx.parallel_min_rows = 0;  // parallelize regardless of input size
  ctx.pool = &TestPool();
  return ctx;
}

// Runs `plan` serially and at dop, asserting bit-identical results.
void ExpectDopAgnostic(const Catalog& catalog, const RaExprPtr& plan,
                       int dop = 4) {
  Executor executor(catalog);
  auto serial = executor.Run(plan, At(1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = executor.Run(plan, At(dop));
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(serial->columns(), parallel->columns());
  EXPECT_EQ(serial->sort_prefix(), parallel->sort_prefix());
  // data() compares raw row-major storage: rows AND row order must match.
  EXPECT_EQ(serial->data(), parallel->data());
}

PropertyGraph RandomGraph(size_t nodes, size_t edges_per_label,
                          uint64_t seed) {
  Rng rng(seed);
  PropertyGraph graph;
  for (size_t i = 0; i < nodes; ++i) {
    graph.AddNode(i % 64 == 0 ? "SEED" : "N");
  }
  for (size_t i = 0; i < edges_per_label; ++i) {
    (void)graph.AddEdge(static_cast<NodeId>(rng.Uniform(nodes)), "e1",
                        static_cast<NodeId>(rng.Uniform(nodes)));
    (void)graph.AddEdge(static_cast<NodeId>(rng.Uniform(nodes)), "e2",
                        static_cast<NodeId>(rng.Uniform(nodes)));
  }
  return graph;
}

TEST(ParallelDifferentialTest, FlatHashJoin) {
  PropertyGraph graph = RandomGraph(2000, 8000, 11);
  Catalog catalog(graph);
  // Shared column trailing on the left, leading-but-unsorted via the
  // projection reorder on the right: hash fallback.
  RaExprPtr plan = RaExpr::Join(
      RaExpr::EdgeScan("e1", "x", "y"),
      RaExpr::Project(RaExpr::EdgeScan("e2", "z", "y"),
                      {{"y", "y"}, {"z", "z"}}),
      JoinStrategy::kFlatHash);
  ExpectDopAgnostic(catalog, plan);
}

TEST(ParallelDifferentialTest, RadixHashJoinWithRealPartitions) {
  // Build side above kRadixTargetPartitionRows => radix_bits >= 1, so the
  // per-partition build/probe loop actually fans out.
  PropertyGraph graph = RandomGraph(20000, 40000, 12);
  Catalog catalog(graph);
  RaExprPtr plan = RaExpr::Join(
      RaExpr::EdgeScan("e1", "x", "y"),
      RaExpr::Project(RaExpr::EdgeScan("e2", "z", "y"),
                      {{"y", "y"}, {"z", "z"}}),
      JoinStrategy::kRadixHash);
  ASSERT_GE(RadixBitsFor(40000), 1);
  ExpectDopAgnostic(catalog, plan);
  ExpectDopAgnostic(catalog, plan, /*dop=*/2);
}

TEST(ParallelDifferentialTest, RadixAnnotationOnSmallBuildDegrades) {
  // Forced radix on a build below the partition target: radix_bits == 0,
  // single logical partition — the degrade path must stay dop-agnostic.
  PropertyGraph graph = RandomGraph(500, 2000, 13);
  Catalog catalog(graph);
  RaExprPtr plan = RaExpr::Join(
      RaExpr::EdgeScan("e1", "x", "y"),
      RaExpr::Project(RaExpr::EdgeScan("e2", "z", "y"),
                      {{"y", "y"}, {"z", "z"}}),
      JoinStrategy::kRadixHash);
  ASSERT_EQ(RadixBitsFor(2000), 0);
  ExpectDopAgnostic(catalog, plan);
}

TEST(ParallelDifferentialTest, MergeAndOffsetJoins) {
  PropertyGraph graph = RandomGraph(2000, 8000, 14);
  Catalog catalog(graph);
  // Both sides sorted on the shared (x, y) prefix: merge.
  RaExprPtr merge = RaExpr::Join(RaExpr::EdgeScan("e1", "x", "y"),
                                 RaExpr::EdgeScan("e2", "x", "y"),
                                 JoinStrategy::kMergeSorted);
  ExpectDopAgnostic(catalog, merge);
  // Right side sorted on the single shared column: offset.
  RaExprPtr offset = RaExpr::Join(RaExpr::EdgeScan("e1", "x", "y"),
                                  RaExpr::EdgeScan("e2", "y", "z"),
                                  JoinStrategy::kOffset);
  ExpectDopAgnostic(catalog, offset);
}

TEST(ParallelDifferentialTest, SelectionAndProjection) {
  PropertyGraph graph = RandomGraph(300, 3000, 15);
  Catalog catalog(graph);
  RaExprPtr join = RaExpr::Join(RaExpr::EdgeScan("e1", "x", "y"),
                                RaExpr::EdgeScan("e2", "y", "z"));
  // Non-identity projection (column reorder) over a selection.
  RaExprPtr plan = RaExpr::Project(RaExpr::SelectEq(join, "x", "z"),
                                   {{"z", "a"}, {"y", "b"}});
  ExpectDopAgnostic(catalog, plan);
}

TEST(ParallelDifferentialTest, SeededAndUnseededClosure) {
  PropertyGraph graph = RandomGraph(1500, 3000, 16);
  Catalog catalog(graph);
  for (SeedSide side : {SeedSide::kSource, SeedSide::kTarget}) {
    RaExprPtr plan = RaExpr::TransitiveClosure(
        RaExpr::EdgeScan("e1", "s", "t"), "s", "t",
        RaExpr::NodeScan({"SEED"}, side == SeedSide::kSource ? "s" : "t"),
        side);
    ExpectDopAgnostic(catalog, plan);
  }
  RaExprPtr unseeded =
      RaExpr::TransitiveClosure(RaExpr::EdgeScan("e1", "s", "t"), "s", "t");
  ExpectDopAgnostic(catalog, unseeded);
}

TEST(ParallelDifferentialTest, BinaryRelationClosureMatchesAcrossDop) {
  Rng rng(17);
  std::vector<Edge> pairs;
  for (size_t i = 0; i < 4000; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(900)),
                       static_cast<NodeId>(rng.Uniform(900)));
  }
  BinaryRelation r = BinaryRelation::FromPairs(std::move(pairs));
  auto serial = BinaryRelation::TransitiveClosure(r, At(1));
  ASSERT_TRUE(serial.ok());
  for (int dop : {2, 4}) {
    auto parallel = BinaryRelation::TransitiveClosure(r, At(dop));
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial->pairs(), parallel->pairs()) << "dop " << dop;
  }
}

TEST(ParallelDifferentialTest, EmptyInputs) {
  PropertyGraph graph = RandomGraph(100, 400, 18);
  Catalog catalog(graph);
  // "nope" has no edges: empty scans flow through every strategy.
  for (JoinStrategy s :
       {JoinStrategy::kAuto, JoinStrategy::kFlatHash, JoinStrategy::kRadixHash,
        JoinStrategy::kMergeSorted, JoinStrategy::kOffset}) {
    RaExprPtr plan = RaExpr::Join(RaExpr::EdgeScan("e1", "x", "y"),
                                  RaExpr::EdgeScan("nope", "y", "z"), s);
    ExpectDopAgnostic(catalog, plan);
  }
  RaExprPtr closure =
      RaExpr::TransitiveClosure(RaExpr::EdgeScan("nope", "s", "t"), "s", "t");
  ExpectDopAgnostic(catalog, closure);
  RaExprPtr empty_probe = RaExpr::Join(RaExpr::EdgeScan("nope", "x", "y"),
                                       RaExpr::EdgeScan("e1", "y", "z"),
                                       JoinStrategy::kFlatHash);
  ExpectDopAgnostic(catalog, empty_probe);
}

TEST(ParallelDifferentialTest, OptimizedPlansEndToEnd) {
  // The full pipeline at a parallel-planning optimizer setting: annotated
  // plans (with p= hints) and an optimizer-seeded closure must execute
  // dop-agnostically too. "e3" is sparse so the closure stays small.
  Rng rng(19);
  PropertyGraph graph = RandomGraph(20000, 40000, 19);
  for (size_t i = 0; i < 6000; ++i) {
    (void)graph.AddEdge(static_cast<NodeId>(rng.Uniform(20000)), "e3",
                        static_cast<NodeId>(rng.Uniform(20000)));
  }
  Catalog catalog(graph);
  OptimizerOptions options;
  options.dop = 4;
  RaExprPtr plan = RaExpr::Join(
      RaExpr::Join(RaExpr::EdgeScan("e1", "x", "y"),
                   RaExpr::Project(RaExpr::EdgeScan("e2", "z", "y"),
                                   {{"y", "y"}, {"z", "z"}})),
      RaExpr::TransitiveClosure(RaExpr::EdgeScan("e3", "z", "w"), "z", "w"));
  RaExprPtr optimized = OptimizePlan(plan, catalog, options);
  ExpectDopAgnostic(catalog, optimized);
}

}  // namespace
}  // namespace gqopt

// Aggregation extension tests, including the invariant that makes the
// extension sound: the schema rewriting preserves result sets (Theorem 1),
// hence every aggregate of the result.

#include <gtest/gtest.h>

#include "api/stages.h"  // white-box stage access
#include "datasets/yago.h"
#include "eval/aggregate.h"
#include "query/query_parser.h"
#include "ra/catalog.h"
#include "ra/executor.h"
#include "test_fixtures.h"

namespace gqopt {
namespace {

using testing::kN2;
using testing::kN3;

ResultSet RunQuery(const PropertyGraph& graph, const std::string& text) {
  auto query = ParseUcqt(text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  GraphEngine engine(graph);
  auto result = engine.Run(*query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : ResultSet{};
}

TEST(AggregateTest, TotalCount) {
  PropertyGraph graph = testing::Fig2Graph();
  ResultSet rows = RunQuery(graph, "x, y <- (x, isLocatedIn, y)");
  auto agg = CountByGroup(rows, {});
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->groups.size(), 1u);
  EXPECT_EQ(agg->groups[0].count, 4u);
  EXPECT_EQ(agg->TotalRows(), 4u);
}

TEST(AggregateTest, GroupBySource) {
  PropertyGraph graph = testing::Fig2Graph();
  // Everything each person can reach through marriage or residence.
  ResultSet rows = RunQuery(graph, "x, y <- (x, isMarriedTo | livesIn, y)");
  auto agg = CountByGroup(rows, {"x"});
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->groups.size(), 2u);  // John and Shradha
  EXPECT_EQ(agg->groups[0].key, (std::vector<NodeId>{kN2}));
  EXPECT_EQ(agg->groups[0].count, 2u);
  EXPECT_EQ(agg->groups[1].key, (std::vector<NodeId>{kN3}));
  EXPECT_EQ(agg->groups[1].count, 2u);
  ASSERT_NE(agg->MaxGroup(), nullptr);
  EXPECT_EQ(agg->MaxGroup()->count, 2u);
}

TEST(AggregateTest, UnknownGroupVariableIsError) {
  PropertyGraph graph = testing::Fig2Graph();
  ResultSet rows = RunQuery(graph, "x, y <- (x, owns, y)");
  auto agg = CountByGroup(rows, {"nope"});
  ASSERT_FALSE(agg.ok());
  EXPECT_EQ(agg.status().code(), StatusCode::kInvalidArgument);
}

TEST(AggregateTest, EmptyResult) {
  PropertyGraph graph = testing::Fig2Graph();
  ResultSet rows = RunQuery(graph, "x, y <- (x, dealsWith, y)");
  auto agg = CountByGroup(rows, {"x"});
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE(agg->groups.empty());
  EXPECT_EQ(agg->TotalRows(), 0u);
  EXPECT_EQ(agg->MaxGroup(), nullptr);
}

TEST(AggregateTest, TableOverloadDeduplicatesFirst) {
  Table table({"a", "b"});
  table.AddRow(std::vector<NodeId>{1, 2});
  table.AddRow(std::vector<NodeId>{1, 2});  // duplicate row
  table.AddRow(std::vector<NodeId>{1, 3});
  auto agg = CountByGroup(table, {"a"});
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->groups.size(), 1u);
  EXPECT_EQ(agg->groups[0].count, 2u);  // set semantics: {1,2} once
}

TEST(AggregateTest, RewritingPreservesAggregates) {
  // The future-work extension's soundness: counts per person of reachable
  // regions/countries agree between the baseline and the rewritten query,
  // and between the two engines.
  YagoConfig config;
  config.persons = 200;
  PropertyGraph graph = GenerateYago(config);
  Catalog catalog(graph);
  auto query =
      ParseUcqt("x1, x2 <- (x1, livesIn/isLocatedIn+/dealsWith+, x2)");
  ASSERT_TRUE(query.ok());
  auto rewritten = RewriteQuery(*query, YagoSchema());
  ASSERT_TRUE(rewritten.ok());
  ASSERT_FALSE(rewritten->reverted);

  GraphEngine engine(graph);
  auto base_rows = engine.Run(*query);
  auto schema_rows = engine.Run(rewritten->query);
  ASSERT_TRUE(base_rows.ok() && schema_rows.ok());
  auto base_agg = CountByGroup(*base_rows, {"x1"});
  auto schema_agg = CountByGroup(*schema_rows, {"x1"});
  ASSERT_TRUE(base_agg.ok() && schema_agg.ok());
  EXPECT_EQ(base_agg->groups, schema_agg->groups);

  Executor executor(catalog);
  auto plan = UcqtToRa(rewritten->query);
  ASSERT_TRUE(plan.ok());
  auto table = executor.Run(OptimizePlan(*plan, catalog));
  ASSERT_TRUE(table.ok());
  auto table_agg = CountByGroup(*table, {"x1"});
  ASSERT_TRUE(table_agg.ok());
  EXPECT_EQ(base_agg->groups, table_agg->groups);
}

}  // namespace
}  // namespace gqopt

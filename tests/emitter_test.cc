// Golden tests for the SQL and Cypher emitters, mirroring the paper's
// Fig 15 (SQL) and Fig 16 (Cypher) Q1/Q2 pair.

#include <gtest/gtest.h>

#include "query/query_parser.h"
#include "translate/cypher_emitter.h"
#include "translate/sql_emitter.h"

namespace gqopt {
namespace {

Ucqt Parse(const std::string& text) {
  auto result = ParseUcqt(text);
  EXPECT_TRUE(result.ok()) << text << ": " << result.status().ToString();
  return result.ok() ? *result : Ucqt{};
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---- SQL (Fig 15) ----------------------------------------------------------

TEST(SqlEmitterTest, BaselineQ1Shape) {
  // Q1: knows/workAt/isLocatedIn.
  auto sql = EmitSql(
      Parse("SRC, TRG <- (SRC, knows/workAt/isLocatedIn, TRG)"));
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_TRUE(Contains(*sql, "SELECT DISTINCT"));
  EXPECT_TRUE(Contains(*sql, "FROM knows"));
  EXPECT_TRUE(Contains(*sql, "JOIN"));
  EXPECT_TRUE(Contains(*sql, "isLocatedIn"));
  EXPECT_FALSE(Contains(*sql, "Organisation"));
  EXPECT_FALSE(Contains(*sql, "WITH RECURSIVE"));
}

TEST(SqlEmitterTest, SchemaEnrichedQ2AddsOrganisationSemiJoin) {
  // Q2: knows/workAt/{Organisation}isLocatedIn — the annotated junction
  // becomes an extra join with the Organisation node table (Fig 15 top).
  auto sql = EmitSql(Parse(
      "SRC, TRG <- (SRC, knows/workAt/{Organisation}isLocatedIn, TRG)"));
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_TRUE(Contains(*sql, "SELECT Sr FROM Organisation"));
  EXPECT_TRUE(Contains(*sql, "isLocatedIn"));
}

TEST(SqlEmitterTest, ClosureBecomesRecursiveCte) {
  auto sql = EmitSql(Parse("x, y <- (x, knows+, y)"));
  ASSERT_TRUE(sql.ok());
  EXPECT_TRUE(Contains(*sql, "WITH RECURSIVE"));
  EXPECT_TRUE(Contains(*sql, "tc_0(Sr, Tr) AS ("));
  EXPECT_TRUE(Contains(*sql, "UNION"));
  EXPECT_TRUE(Contains(*sql, "ON t.Tr = s.Sr"));
}

TEST(SqlEmitterTest, ReverseSwapsColumns) {
  auto sql = EmitSql(Parse("x, y <- (x, -hasCreator, y)"));
  ASSERT_TRUE(sql.ok());
  EXPECT_TRUE(Contains(*sql, "SELECT Tr AS Sr, Sr AS Tr FROM hasCreator"));
}

TEST(SqlEmitterTest, BranchBecomesExists) {
  auto sql = EmitSql(Parse("x, y <- (x, livesIn[isLocatedIn], y)"));
  ASSERT_TRUE(sql.ok());
  EXPECT_TRUE(Contains(*sql, "WHERE EXISTS"));
}

TEST(SqlEmitterTest, ConjunctionJoinsBothColumns) {
  auto sql = EmitSql(Parse("x, y <- (x, knows & follows, y)"));
  ASSERT_TRUE(sql.ok());
  EXPECT_TRUE(Contains(*sql, ".Sr = "));
  EXPECT_TRUE(Contains(*sql, ".Tr = "));
}

TEST(SqlEmitterTest, LabelAtomBecomesInPredicate) {
  auto sql = EmitSql(
      Parse("x, y <- (x, knows, y), label(y) in {Person, Organisation}"));
  ASSERT_TRUE(sql.ok());
  EXPECT_TRUE(Contains(
      *sql, "IN (SELECT Sr FROM Organisation UNION SELECT Sr FROM Person)"));
}

TEST(SqlEmitterTest, SharedVariablesBecomeEqualities) {
  auto sql = EmitSql(Parse("x <- (x, owns, z), (x, livesIn, c)"));
  ASSERT_TRUE(sql.ok());
  EXPECT_TRUE(Contains(*sql, "r0.Sr = r1.Sr"));
}

TEST(SqlEmitterTest, UnionOfDisjuncts) {
  auto sql = EmitSql(Parse("x, y <- (x, knows, y) ++ (x, follows, y)"));
  ASSERT_TRUE(sql.ok());
  EXPECT_TRUE(Contains(*sql, "UNION"));
}

TEST(SqlEmitterTest, OrderLimitOffsetSuffix) {
  auto sql = EmitSql(
      Parse("x, y <- (x, knows, y) order by y desc, x limit 10 offset 3"));
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_TRUE(Contains(*sql, "ORDER BY y DESC, x"));
  EXPECT_TRUE(Contains(*sql, "LIMIT 10"));
  EXPECT_TRUE(Contains(*sql, "OFFSET 3"));
  // A zero offset is the default window: not rendered.
  auto plain = EmitSql(Parse("x, y <- (x, knows, y) order by x limit 10"));
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(Contains(*plain, "OFFSET"));
}

TEST(SqlEmitterTest, EmptyQueryEmitsFalsePredicate) {
  Ucqt empty;
  empty.head_vars = {"x", "y"};
  auto sql = EmitSql(empty);
  ASSERT_TRUE(sql.ok());
  EXPECT_TRUE(Contains(*sql, "WHERE 1 = 0"));
}

TEST(SqlEmitterTest, ViewWrappersPerDialect) {
  Ucqt q = Parse("x, y <- (x, knows, y)");
  SqlOptions options;
  options.as_view = true;
  options.view_name = "v";
  options.dialect = SqlDialect::kPostgres;
  EXPECT_TRUE(Contains(*EmitSql(q, options), "CREATE TEMPORARY VIEW v AS"));
  options.dialect = SqlDialect::kMySql;
  EXPECT_TRUE(Contains(*EmitSql(q, options), "CREATE OR REPLACE VIEW v AS"));
  options.dialect = SqlDialect::kSqlite;
  EXPECT_TRUE(Contains(*EmitSql(q, options), "CREATE VIEW v AS"));
}

// ---- Cypher (Fig 16) -------------------------------------------------------

TEST(CypherEmitterTest, BaselineQ1Pattern) {
  auto cypher = EmitCypher(
      Parse("SRC, TRG <- (SRC, knows/workAt/isLocatedIn, TRG)"));
  ASSERT_TRUE(cypher.ok()) << cypher.status().ToString();
  EXPECT_TRUE(Contains(
      *cypher,
      "MATCH (SRC)-[:knows]->()-[:workAt]->()-[:isLocatedIn]->(TRG)"));
  EXPECT_TRUE(Contains(*cypher, "RETURN DISTINCT SRC, TRG"));
}

TEST(CypherEmitterTest, SchemaEnrichedQ2AddsNodeLabel) {
  // Fig 16 top: the junction annotation becomes a node label.
  auto cypher = EmitCypher(Parse(
      "SRC, TRG <- (SRC, knows/workAt/{Organisation}isLocatedIn, TRG)"));
  ASSERT_TRUE(cypher.ok()) << cypher.status().ToString();
  EXPECT_TRUE(Contains(*cypher, "-[:workAt]->(_j0:Organisation)"))
      << *cypher;
}

TEST(CypherEmitterTest, ReverseUsesLeftArrow) {
  auto cypher = EmitCypher(Parse("x, y <- (x, -hasCreator/knows, y)"));
  ASSERT_TRUE(cypher.ok());
  EXPECT_TRUE(Contains(*cypher, "(x)<-[:hasCreator]-"));
}

TEST(CypherEmitterTest, ClosureOfSingleEdgeIsVariableLength) {
  auto cypher = EmitCypher(Parse("x, y <- (x, knows+, y)"));
  ASSERT_TRUE(cypher.ok());
  EXPECT_TRUE(Contains(*cypher, "-[:knows*1..]->"));
}

TEST(CypherEmitterTest, BoundedRepeat) {
  auto cypher = EmitCypher(Parse("x, y <- (x, knows{1,3}/likes, y)"));
  ASSERT_TRUE(cypher.ok());
  EXPECT_TRUE(Contains(*cypher, "-[:knows*1..3]->"));
}

TEST(CypherEmitterTest, LabelAtomsBecomeNodeLabels) {
  auto cypher =
      EmitCypher(Parse("x, y <- (x, knows, y), label(y) = Person"));
  ASSERT_TRUE(cypher.ok());
  EXPECT_TRUE(Contains(*cypher, "(y:Person)"));
}

TEST(CypherEmitterTest, UnionOfDisjuncts) {
  auto cypher = EmitCypher(Parse("x, y <- (x, knows, y) ++ (x, likes, y)"));
  ASSERT_TRUE(cypher.ok());
  EXPECT_TRUE(Contains(*cypher, "UNION"));
}

TEST(CypherEmitterTest, OrderLimitSkipSuffix) {
  // Cypher spells the window prefix SKIP, placed before LIMIT.
  auto cypher = EmitCypher(
      Parse("x, y <- (x, knows, y) order by y desc, x limit 10 offset 3"));
  ASSERT_TRUE(cypher.ok()) << cypher.status().ToString();
  EXPECT_TRUE(Contains(*cypher, "ORDER BY y DESC, x"));
  EXPECT_TRUE(Contains(*cypher, "SKIP 3"));
  EXPECT_TRUE(Contains(*cypher, "LIMIT 10"));
  EXPECT_LT(cypher->find("SKIP 3"), cypher->find("LIMIT 10"));
  auto plain = EmitCypher(Parse("x, y <- (x, knows, y) order by x limit 10"));
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(Contains(*plain, "SKIP"));
}

TEST(CypherEmitterTest, RejectsBeyondUc2rpq) {
  // Branch, conjunction, union inside a path and compound closures are
  // outside Cypher's fragment (paper §5.5: only 15 of 30 LDBC queries).
  for (const char* text : {
           "x, y <- (x, likes[hasTag], y)",
           "x, y <- (x, knows & follows, y)",
           "x, y <- (x, knows | follows, y)",
           "x, y <- (x, (knows/likes)+, y)",
           "x, y <- (x, [knows]likes, y)",
       }) {
    Ucqt q = Parse(text);
    EXPECT_FALSE(IsCypherExpressible(q)) << text;
    auto cypher = EmitCypher(q);
    ASSERT_FALSE(cypher.ok()) << text;
    EXPECT_EQ(cypher.status().code(), StatusCode::kUnimplemented);
  }
}

TEST(CypherEmitterTest, ExpressibleFragmentDetection) {
  EXPECT_TRUE(IsCypherExpressible(
      Parse("x, y <- (x, knows+/workAt/isLocatedIn, y)")));
  EXPECT_TRUE(IsCypherExpressible(
      Parse("x, y <- (x, -hasCreator/-replyOf/hasCreator, y)")));
  EXPECT_FALSE(IsCypherExpressible(
      Parse("x, y <- (x, (knows & (studyAt/-studyAt))+, y)")));
}

}  // namespace
}  // namespace gqopt

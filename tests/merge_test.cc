// Triple merging (Def 9, Example 11) and redundant-annotation removal
// (§3.2.2, Examples 12/13).

#include <gtest/gtest.h>

#include <set>

#include "algebra/path_parser.h"
#include "core/merge.h"
#include "core/type_inference.h"
#include "test_fixtures.h"

namespace gqopt {
namespace {

using testing::Fig1Schema;

PathExprPtr Parse(const std::string& text) {
  auto result = ParsePathExpr(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : nullptr;
}

SchemaTriple MakeTriple(const std::string& src, const std::string& expr,
                        const std::string& tgt) {
  SchemaTriple t;
  t.source_label = src;
  t.expr = Parse(expr);
  t.target_label = tgt;
  return t;
}

TEST(MergeTest, Example11MergesAnnotationsPositionWise) {
  // Triples (m, a+/{n}b/{l}d, p) and (m, a+/{q}b/{r}d, l) merge into
  // ({m}, a+/{n,q}b/{l,r}d, {l, p}).
  TripleSet triples = {MakeTriple("m", "a+/{n}b/{l}d", "p"),
                       MakeTriple("m", "a+/{q}b/{r}d", "l")};
  std::vector<MergedTriple> merged = MergeTriples(triples);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].source_labels, (std::vector<std::string>{"m"}));
  EXPECT_EQ(merged[0].target_labels, (std::vector<std::string>{"l", "p"}));
  EXPECT_TRUE(
      PathExpr::Equals(merged[0].expr, Parse("a+/{n,q}b/{l,r}d")))
      << merged[0].expr->ToString();
}

TEST(MergeTest, DistinctSkeletonsStaySeparate) {
  TripleSet triples = {MakeTriple("A", "a/{X}b", "B"),
                       MakeTriple("A", "a/{X}c", "B")};
  EXPECT_EQ(MergeTriples(triples).size(), 2u);
}

TEST(MergeTest, MergeIgnoresAnnotationDifferencesInGrouping) {
  // Same skeleton, different annotations: one group.
  TripleSet triples = {MakeTriple("A", "a/{X}b", "B"),
                       MakeTriple("C", "a/{Y}b", "D")};
  std::vector<MergedTriple> merged = MergeTriples(triples);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].source_labels, (std::vector<std::string>{"A", "C"}));
  EXPECT_TRUE(PathExpr::Equals(merged[0].expr, Parse("a/{X,Y}b")));
}

TEST(MergeTest, MergeUnionsReplacementRecords) {
  SchemaTriple a = MakeTriple("A", "x/{M}y", "B");
  a.replacements = {{"(x+)", 2}};
  SchemaTriple b = MakeTriple("A", "x/{N}y", "B");
  b.replacements = {{"(x+)", 2}, {"(y+)", 1}};
  std::vector<MergedTriple> merged = MergeTriples({a, b});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].replacements.size(), 2u);  // deduplicated
}

TEST(PruneTest, Example13JunctionPruning) {
  // The single triple of TS(livesIn/isLocatedIn+/dealsWith+): the {CITY}
  // junction after livesIn and the {COUNTRY} junction before dealsWith+
  // are schema-implied and pruned; {REGION} stays.
  GraphSchema schema = Fig1Schema();
  auto expr = Parse(
      "livesIn/{CITY}isLocatedIn/{REGION}isLocatedIn/{COUNTRY}dealsWith+");
  std::vector<MergedTriple> triples(1);
  triples[0].source_labels = {"PERSON"};
  triples[0].target_labels = {"COUNTRY"};
  triples[0].expr = expr;
  PruneRedundantAnnotations(schema, &triples);
  EXPECT_TRUE(PathExpr::Equals(
      triples[0].expr,
      Parse("livesIn/isLocatedIn/{REGION}isLocatedIn/dealsWith+")))
      << triples[0].expr->ToString();
  // Endpoint sets are covered by the schema and cleared (Example 13 ends
  // with an unconstrained merged triple).
  EXPECT_TRUE(triples[0].source_labels.empty());
  EXPECT_TRUE(triples[0].target_labels.empty());
}

TEST(PruneTest, KeepsSelectiveJunction) {
  // owns/{PROPERTY}isLocatedIn: implied by owns' target set -> pruned;
  // but a {CITY} junction between two isLocatedIn steps is selective on
  // both sides -> kept.
  GraphSchema schema = Fig1Schema();
  std::vector<MergedTriple> triples(2);
  triples[0].expr = Parse("owns/{PROPERTY}isLocatedIn");
  triples[1].expr = Parse("isLocatedIn/{CITY}isLocatedIn");
  PruneRedundantAnnotations(schema, &triples);
  EXPECT_FALSE(triples[0].expr->HasAnnotations());
  EXPECT_TRUE(triples[1].expr->HasAnnotations());
}

TEST(PruneTest, EndpointSubsetStaysConstrained) {
  // A target set smaller than what the schema admits must be kept.
  GraphSchema schema = Fig1Schema();
  std::vector<MergedTriple> triples(1);
  triples[0].expr = Parse("isLocatedIn");
  triples[0].source_labels = {"PROPERTY"};  // schema also admits CITY/REGION
  triples[0].target_labels = {"CITY", "COUNTRY", "REGION"};  // all: covered
  PruneRedundantAnnotations(schema, &triples);
  EXPECT_EQ(triples[0].source_labels,
            (std::vector<std::string>{"PROPERTY"}));
  EXPECT_TRUE(triples[0].target_labels.empty());
}

TEST(PruneTest, StripAllAnnotationsDedups) {
  std::vector<MergedTriple> triples(2);
  triples[0].expr = Parse("a/{X}b");
  triples[0].source_labels = {"A"};
  triples[1].expr = Parse("a/{Y}b");
  triples[1].target_labels = {"B"};
  auto stripped = StripAllAnnotations(std::move(triples));
  ASSERT_EQ(stripped.size(), 1u);
  EXPECT_FALSE(stripped[0].expr->HasAnnotations());
  EXPECT_TRUE(stripped[0].source_labels.empty());
  EXPECT_TRUE(stripped[0].target_labels.empty());
}

TEST(MergedTripleTest, ToStringRendersConstraints) {
  MergedTriple t;
  t.expr = Parse("a/b");
  EXPECT_EQ(t.ToString(), "(*, a/b, *)");
  t.source_labels = {"A", "B"};
  t.target_labels = {"C"};
  EXPECT_EQ(t.ToString(), "({A,B}, a/b, {C})");
}

}  // namespace
}  // namespace gqopt

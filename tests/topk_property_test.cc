// Randomized ordering property suite (fixed seeds): on random graphs and
// random sort-key / limit combinations, the ordered operators must return
// exactly the first k rows of the stably-ordered full result — where the
// order is the total order "sort keys first (directions respected), then
// the remaining columns ascending". The answer must further be
// bit-identical across a cold and a memo-warm executor, serial and
// parallel execution, governed and ungoverned memory, and (for seeded
// closures) the frontier prune on and off.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "graph/property_graph.h"
#include "ra/catalog.h"
#include "ra/executor.h"
#include "ra/ra_expr.h"
#include "util/exec_context.h"
#include "util/mem_tracker.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gqopt {
namespace {

ThreadPool& TestPool() {
  static ThreadPool pool(3);
  return pool;
}

ExecContext At(int dop) {
  ExecContext ctx;
  ctx.dop = dop;
  ctx.parallel_min_rows = 0;
  ctx.pool = &TestPool();
  return ctx;
}

PropertyGraph RandomGraph(Rng* rng) {
  PropertyGraph graph;
  size_t nodes = 30 + rng->Uniform(200);
  for (size_t i = 0; i < nodes; ++i) {
    graph.AddNode(i % 16 == 0 ? "SEED" : "N");
  }
  size_t edges = 50 + rng->Uniform(600);
  for (size_t i = 0; i < edges; ++i) {
    (void)graph.AddEdge(static_cast<NodeId>(rng->Uniform(nodes)), "e1",
                        static_cast<NodeId>(rng->Uniform(nodes)));
    (void)graph.AddEdge(static_cast<NodeId>(rng->Uniform(nodes)), "e2",
                        static_cast<NodeId>(rng->Uniform(nodes)));
  }
  graph.Finalize();
  return graph;
}

// A random child plan over {e1, e2} with 2-3 output columns.
RaExprPtr RandomChildPlan(Rng* rng) {
  switch (rng->Uniform(5)) {
    case 0:
      return RaExpr::EdgeScan("e1", "x", "y");
    case 1:  // reversed scan via projection: unsorted input downstream
      return RaExpr::Project(RaExpr::EdgeScan("e2", "y", "x"),
                             {{"x", "x"}, {"y", "y"}});
    case 2:
      return RaExpr::Join(RaExpr::EdgeScan("e1", "x", "y"),
                          RaExpr::EdgeScan("e2", "y", "z"));
    case 3:
      return RaExpr::Distinct(
          RaExpr::Union(RaExpr::EdgeScan("e1", "x", "y"),
                        RaExpr::EdgeScan("e2", "x", "y")));
    default:
      return RaExpr::TransitiveClosure(RaExpr::EdgeScan("e1", "x", "y"),
                                       "x", "y",
                                       RaExpr::NodeScan({"SEED"}, "x"),
                                       SeedSide::kSource);
  }
}

std::vector<SortKey> RandomKeys(const std::vector<std::string>& columns,
                                Rng* rng) {
  std::vector<std::string> pool = columns;
  size_t count = 1 + rng->Uniform(pool.size());
  std::vector<SortKey> keys;
  for (size_t i = 0; i < count; ++i) {
    size_t pick = rng->Uniform(pool.size());
    keys.push_back(SortKey{pool[pick], rng->Chance(0.5)});
    pool.erase(pool.begin() + static_cast<long>(pick));
  }
  return keys;
}

std::vector<std::vector<NodeId>> RowsOf(const Table& t) {
  std::vector<std::vector<NodeId>> rows;
  size_t arity = t.columns().size();
  rows.reserve(t.rows());
  for (size_t r = 0; r < t.rows(); ++r) {
    std::vector<NodeId> row(arity);
    for (size_t c = 0; c < arity; ++c) row[c] = t.data()[r * arity + c];
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::vector<NodeId>> NaiveTopK(const Table& t,
                                           const std::vector<SortKey>& keys,
                                           size_t k) {
  auto rows = RowsOf(t);
  std::vector<std::pair<size_t, bool>> order;
  std::vector<bool> keyed(t.columns().size(), false);
  for (const SortKey& key : keys) {
    for (size_t c = 0; c < t.columns().size(); ++c) {
      if (t.columns()[c] == key.column) {
        order.emplace_back(c, key.descending);
        keyed[c] = true;
      }
    }
  }
  for (size_t c = 0; c < t.columns().size(); ++c) {
    if (!keyed[c]) order.emplace_back(c, false);
  }
  std::sort(rows.begin(), rows.end(),
            [&order](const std::vector<NodeId>& a,
                     const std::vector<NodeId>& b) {
              for (const auto& [col, desc] : order) {
                if (a[col] != b[col]) {
                  return desc ? a[col] > b[col] : a[col] < b[col];
                }
              }
              return false;
            });
  if (k < rows.size()) rows.resize(k);
  return rows;
}

class TopKPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopKPropertyTest, TopKIsThePrefixOfTheStableFullOrder) {
  Rng rng(GetParam());
  PropertyGraph graph = RandomGraph(&rng);
  Catalog catalog(graph);

  for (int round = 0; round < 8; ++round) {
    RaExprPtr child = RandomChildPlan(&rng);
    std::vector<SortKey> keys = RandomKeys(child->columns(), &rng);

    Executor reference_executor(catalog);
    auto full = reference_executor.Run(child, At(1));
    ASSERT_TRUE(full.ok()) << full.status().ToString();

    size_t k;
    switch (rng.Uniform(4)) {
      case 0: k = 0; break;
      case 1: k = 1 + rng.Uniform(full->rows() + 1); break;
      case 2: k = full->rows(); break;
      default: k = full->rows() + 1 + rng.Uniform(5); break;
    }
    auto expected = NaiveTopK(*full, keys, k);

    RaExprPtr topk = RaExpr::TopK(child, keys, k);
    RaExprPtr unfused = RaExpr::Limit(RaExpr::Sort(child, keys), k);

    // Cold, serial, ungoverned: the reference execution.
    Executor cold(catalog);
    auto base = cold.Run(topk, At(1));
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    EXPECT_EQ(RowsOf(*base), expected)
        << "seed=" << GetParam() << " round=" << round << " k=" << k;

    // Memo-warm re-run in the same executor: bit-identical.
    auto warm = cold.Run(topk, At(1));
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    EXPECT_EQ(base->data(), warm->data());

    // Serial vs parallel: bit-identical.
    Executor parallel(catalog);
    auto at4 = parallel.Run(topk, At(4));
    ASSERT_TRUE(at4.ok()) << at4.status().ToString();
    EXPECT_EQ(base->data(), at4->data());

    // Bounded (generous budget) vs unbounded memory: bit-identical.
    MemoryTracker tracker(int64_t{1} << 30, "test");
    ExecContext governed = At(1);
    governed.mem = &tracker;
    Executor bounded(catalog);
    auto under_budget = bounded.Run(topk, governed);
    ASSERT_TRUE(under_budget.ok()) << under_budget.status().ToString();
    EXPECT_EQ(base->data(), under_budget->data());

    // Frontier prune on vs off: bit-identical.
    ExecContext no_prune = At(1);
    no_prune.topk_pruning = false;
    Executor unpruned(catalog);
    auto plain = unpruned.Run(topk, no_prune);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    EXPECT_EQ(base->data(), plain->data());

    // The unfused Limit(Sort(child)) form agrees.
    Executor two_step(catalog);
    auto split = two_step.Run(unfused, At(1));
    ASSERT_TRUE(split.ok()) << split.status().ToString();
    EXPECT_EQ(RowsOf(*split), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace gqopt

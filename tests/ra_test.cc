// RRA plan construction, optimization, execution and EXPLAIN.

#include <gtest/gtest.h>

#include "eval/graph_engine.h"
#include "query/query_parser.h"
#include "ra/catalog.h"
#include "ra/executor.h"
#include "ra/explain.h"
#include "api/stages.h"  // white-box stage access
#include "test_fixtures.h"

namespace gqopt {
namespace {

using testing::kN1;
using testing::kN2;
using testing::kN3;
using testing::kN4;
using testing::kN5;
using testing::kN6;
using testing::kN7;

class RaTest : public ::testing::Test {
 protected:
  RaTest() : graph_(testing::Fig2Graph()), catalog_(graph_) {}

  Table Run(const RaExprPtr& plan) {
    Executor executor(catalog_);
    auto result = executor.Run(plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : Table{};
  }

  Table RunQuery(const std::string& text, bool optimize = true) {
    auto query = ParseUcqt(text);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    auto plan = UcqtToRa(*query);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    RaExprPtr final_plan =
        optimize ? OptimizePlan(*plan, catalog_) : *plan;
    return Run(final_plan);
  }

  PropertyGraph graph_;
  Catalog catalog_;
};

TEST_F(RaTest, EdgeScan) {
  Table t = Run(RaExpr::EdgeScan("livesIn", "s", "t"));
  EXPECT_EQ(t.columns(), (std::vector<std::string>{"s", "t"}));
  ASSERT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.At(0, 0), kN2);
  EXPECT_EQ(t.At(0, 1), kN4);
}

TEST_F(RaTest, NodeScanUnion) {
  Table t = Run(RaExpr::NodeScan({"CITY", "REGION"}, "n"));
  ASSERT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.At(0, 0), kN4);
}

TEST_F(RaTest, ProjectRenames) {
  Table t = Run(RaExpr::Project(RaExpr::EdgeScan("owns", "a", "b"),
                                {{"b", "prop"}, {"a", "person"}}));
  EXPECT_EQ(t.columns(), (std::vector<std::string>{"prop", "person"}));
  EXPECT_EQ(t.At(0, 0), kN1);
  EXPECT_EQ(t.At(0, 1), kN2);
}

TEST_F(RaTest, JoinOnSharedColumn) {
  // owns(x, z) join isLocatedIn(z, c).
  RaExprPtr plan = RaExpr::Join(RaExpr::EdgeScan("owns", "x", "z"),
                                RaExpr::EdgeScan("isLocatedIn", "z", "c"));
  Table t = Run(plan);
  EXPECT_EQ(t.columns(), (std::vector<std::string>{"x", "z", "c"}));
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.At(0, 0), kN2);
  EXPECT_EQ(t.At(0, 2), kN6);
}

TEST_F(RaTest, CrossJoinWhenNoSharedColumns) {
  RaExprPtr plan = RaExpr::Join(RaExpr::EdgeScan("owns", "a", "b"),
                                RaExpr::EdgeScan("dealsWith", "c", "d"));
  Table t = Run(plan);
  EXPECT_EQ(t.rows(), 0u);  // no dealsWith edges in Fig 2
  RaExprPtr plan2 = RaExpr::Join(RaExpr::EdgeScan("owns", "a", "b"),
                                 RaExpr::EdgeScan("livesIn", "c", "d"));
  EXPECT_EQ(Run(plan2).rows(), 2u);  // 1 x 2
}

TEST_F(RaTest, SemiJoinKeepsLeftColumns) {
  RaExprPtr plan = RaExpr::SemiJoin(
      RaExpr::EdgeScan("livesIn", "p", "c"),
      RaExpr::Project(RaExpr::EdgeScan("isLocatedIn", "c", "r"),
                      {{"c", "c"}}));
  Table t = Run(plan);
  EXPECT_EQ(t.columns(), (std::vector<std::string>{"p", "c"}));
  EXPECT_EQ(t.rows(), 2u);  // both cities have isLocatedIn
}

TEST_F(RaTest, SelectEqFiltersDiagonal) {
  RaExprPtr base = RaExpr::Join(
      RaExpr::EdgeScan("isMarriedTo", "x", "y"),
      RaExpr::EdgeScan("isMarriedTo", "y", "z"));
  Table t = Run(RaExpr::SelectEq(base, "x", "z"));
  EXPECT_EQ(t.rows(), 2u);  // (John,...,John), (Shradha,...,Shradha)
}

TEST_F(RaTest, UnionAlignsColumns) {
  RaExprPtr left = RaExpr::EdgeScan("owns", "a", "b");
  // Same columns in a different order.
  RaExprPtr right = RaExpr::Project(RaExpr::EdgeScan("livesIn", "b", "a"),
                                    {{"b", "b"}, {"a", "a"}});
  Table t = Run(RaExpr::Distinct(RaExpr::Union(left, right)));
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.columns(), (std::vector<std::string>{"a", "b"}));
}

TEST_F(RaTest, TransitiveClosureUnseeded) {
  Table t = Run(RaExpr::TransitiveClosure(
      RaExpr::EdgeScan("isLocatedIn", "s", "t"), "s", "t"));
  EXPECT_EQ(t.rows(), 8u);  // matches the Fig 5 evaluation
}

TEST_F(RaTest, TransitiveClosureSeededOnSource) {
  // Seeds = {n1}: only paths starting at the property.
  RaExprPtr seed =
      RaExpr::Project(RaExpr::NodeScan({"PROPERTY"}, "s"), {{"s", "s"}});
  Table t = Run(RaExpr::TransitiveClosure(
      RaExpr::EdgeScan("isLocatedIn", "s", "t"), "s", "t", seed,
      SeedSide::kSource));
  EXPECT_EQ(t.rows(), 3u);  // n1 -> n6, n5, n7
}

TEST_F(RaTest, TransitiveClosureSeededOnTarget) {
  RaExprPtr seed = RaExpr::NodeScan({"COUNTRY"}, "t");
  Table t = Run(RaExpr::TransitiveClosure(
      RaExpr::EdgeScan("isLocatedIn", "s", "t"), "s", "t", seed,
      SeedSide::kTarget));
  // Paths ending at France: from n1, n4, n5, n6.
  EXPECT_EQ(t.rows(), 4u);
}

TEST_F(RaTest, SeededMatchesUnseededAfterJoin) {
  // Join(owns, TC(isLocatedIn)) must give identical results whether the
  // optimizer seeds the closure or not.
  Table unoptimized = RunQuery(
      "x, y <- (x, owns/isLocatedIn+, y)", /*optimize=*/false);
  Table optimized = RunQuery("x, y <- (x, owns/isLocatedIn+, y)",
                             /*optimize=*/true);
  unoptimized.SortDistinct();
  optimized.SortDistinct();
  EXPECT_EQ(unoptimized.data(), optimized.data());
  EXPECT_EQ(unoptimized.rows(), 3u);
}

TEST_F(RaTest, OptimizerSeedsClosureInJoinCluster) {
  auto query = ParseUcqt("x, y <- (x, owns/isLocatedIn+, y)");
  ASSERT_TRUE(query.ok());
  auto plan = UcqtToRa(*query);
  ASSERT_TRUE(plan.ok());
  RaExprPtr optimized = OptimizePlan(*plan, catalog_);
  // Find a seeded closure somewhere in the plan.
  std::function<bool(const RaExprPtr&)> has_seeded =
      [&](const RaExprPtr& e) -> bool {
    if (!e) return false;
    if (e->op() == RaOp::kTransitiveClosure &&
        e->seed_side() != SeedSide::kNone) {
      return true;
    }
    return has_seeded(e->left()) || has_seeded(e->right());
  };
  EXPECT_TRUE(has_seeded(optimized)) << optimized->ToString();
}

TEST_F(RaTest, QueryTranslationMatchesGraphEngine) {
  for (const char* text : {
           "x, y <- (x, owns, y)",
           "x, y <- (x, owns/isLocatedIn, y)",
           "x, y <- (x, livesIn | owns, y)",
           "x, y <- (x, isLocatedIn+, y)",
           "x, y <- (x, livesIn & (livesIn | owns), y)",
           "x, y <- (x, livesIn[isLocatedIn], y)",
           "x, y <- (x, [owns]livesIn, y)",
           "x, y <- (x, -owns/livesIn, y)",
           "x, y <- (x, isMarriedTo{1,2}, y)",
           "y <- (y, livesIn/isLocatedIn+, m), (y, owns, z)",
           "x, y <- (x, isLocatedIn, y), label(x) = CITY",
           "x <- (x, isMarriedTo/isMarriedTo, x)",
       }) {
    Table table = RunQuery(text);
    auto query = ParseUcqt(text);
    ASSERT_TRUE(query.ok());
    GraphEngine engine(graph_);
    auto expected = engine.Run(*query);
    ASSERT_TRUE(expected.ok()) << text;
    table.SortDistinct();
    ASSERT_EQ(table.rows(), expected->rows.size()) << text;
    for (size_t r = 0; r < table.rows(); ++r) {
      for (size_t c = 0; c < table.arity(); ++c) {
        EXPECT_EQ(table.At(r, c), expected->rows[r][c]) << text;
      }
    }
  }
}

TEST_F(RaTest, ExplainReportsCostAndRows) {
  auto query = ParseUcqt("x, y <- (x, owns/isLocatedIn, y)");
  ASSERT_TRUE(query.ok());
  auto plan = UcqtToRa(*query);
  ASSERT_TRUE(plan.ok());
  std::string explain = ExplainPlan(*plan, catalog_);
  EXPECT_NE(explain.find("cost ="), std::string::npos);
  EXPECT_NE(explain.find("rows ="), std::string::npos);
  EXPECT_NE(explain.find("EdgeScan owns"), std::string::npos);
}

TEST_F(RaTest, EstimatorScanCardinalitiesAreExact) {
  Estimator estimator(catalog_);
  RaExprPtr scan = RaExpr::EdgeScan("isLocatedIn", "s", "t");
  const PlanEstimate& est = estimator.Estimate(scan.get());
  EXPECT_DOUBLE_EQ(est.rows, 4.0);
  EXPECT_DOUBLE_EQ(est.ndv.at("s"), 4.0);
  EXPECT_DOUBLE_EQ(est.ndv.at("t"), 3.0);
}

TEST_F(RaTest, TableSortDistinct) {
  Table t({"a", "b"});
  t.AddRow(std::vector<NodeId>{2, 1});
  t.AddRow(std::vector<NodeId>{1, 2});
  t.AddRow(std::vector<NodeId>{2, 1});
  t.SortDistinct();
  ASSERT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.At(0, 0), 1u);
  EXPECT_EQ(t.At(1, 0), 2u);
}

TEST_F(RaTest, DeadlineAbortsExecution) {
  auto query = ParseUcqt("x, y <- (x, isLocatedIn+, y)");
  ASSERT_TRUE(query.ok());
  auto plan = UcqtToRa(*query);
  ASSERT_TRUE(plan.ok());
  Executor executor(catalog_);
  Deadline expired = Deadline::AfterMillis(1);
  while (!expired.Expired()) {
  }
  auto result = executor.Run(*plan, expired);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace gqopt

// Dataset generators and workload sanity: schema conformance (Def 3),
// paper Tab 3 shape (label/relation counts), workload parseability and the
// expected rewrite outcomes per workload query.

#include <gtest/gtest.h>

#include <set>

#include "api/stages.h"  // white-box stage access
#include "datasets/ldbc.h"
#include "datasets/workloads.h"
#include "datasets/yago.h"
#include "graph/consistency.h"
#include "translate/cypher_emitter.h"

namespace gqopt {
namespace {

TEST(YagoSchemaTest, Tab3Shape) {
  GraphSchema schema = YagoSchema();
  // Tab 3: 7 node relations, 88 edge relations.
  EXPECT_EQ(schema.num_node_labels(), 7u);
  EXPECT_EQ(schema.edge_labels().size(), 88u);
}

TEST(YagoSchemaTest, CoreTopology) {
  GraphSchema schema = YagoSchema();
  // The acyclic isLocatedIn chain of Fig 1 plus ORG/EVENT entry points.
  EXPECT_TRUE(schema.Admits("PROPERTY", "isLocatedIn", "CITY"));
  EXPECT_TRUE(schema.Admits("CITY", "isLocatedIn", "REGION"));
  EXPECT_TRUE(schema.Admits("REGION", "isLocatedIn", "COUNTRY"));
  EXPECT_FALSE(schema.Admits("COUNTRY", "isLocatedIn", "PROPERTY"));
  EXPECT_TRUE(schema.Admits("COUNTRY", "dealsWith", "COUNTRY"));
}

TEST(YagoGeneratorTest, ConformsToSchema) {
  YagoConfig config;
  config.persons = 300;
  PropertyGraph graph = GenerateYago(config);
  ConsistencyReport report = CheckConsistency(graph, YagoSchema(), 5);
  EXPECT_TRUE(report.consistent())
      << (report.violations.empty() ? "" : report.violations[0].detail);
}

TEST(YagoGeneratorTest, DeterministicAndScaled) {
  YagoConfig config;
  config.persons = 200;
  PropertyGraph a = GenerateYago(config);
  PropertyGraph b = GenerateYago(config);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  config.persons = 400;
  PropertyGraph big = GenerateYago(config);
  EXPECT_GT(big.num_nodes(), a.num_nodes());
  EXPECT_GT(big.num_edges(), a.num_edges());
}

TEST(YagoGeneratorTest, AllEdgeRelationsPopulated) {
  YagoConfig config;
  config.persons = 300;
  PropertyGraph graph = GenerateYago(config);
  GraphSchema schema = YagoSchema();
  for (const std::string& label : schema.edge_labels()) {
    EXPECT_FALSE(graph.EdgesByLabel(label).empty())
        << "edge relation " << label << " is empty";
  }
}

TEST(LdbcSchemaTest, Tab3Shape) {
  GraphSchema schema = LdbcSchema();
  // Tab 3: 8 node relations, 16 edge relations.
  EXPECT_EQ(schema.num_node_labels(), 8u);
  EXPECT_EQ(schema.edge_labels().size(), 16u);
}

TEST(LdbcSchemaTest, RecursionTopology) {
  GraphSchema schema = LdbcSchema();
  // Cyclic at schema level: knows, isSubclassOf, isPartOf, replyOf.
  EXPECT_TRUE(schema.Admits("Person", "knows", "Person"));
  EXPECT_TRUE(schema.Admits("TagClass", "isSubclassOf", "TagClass"));
  EXPECT_TRUE(schema.Admits("Place", "isPartOf", "Place"));
  EXPECT_TRUE(schema.Admits("Comment", "replyOf", "Comment"));
  // Acyclic: isLocatedIn never leaves Place.
  EXPECT_TRUE(schema.Admits("Person", "isLocatedIn", "Place"));
  EXPECT_FALSE(schema.Admits("Place", "isLocatedIn", "Place"));
}

TEST(LdbcGeneratorTest, ConformsToSchema) {
  LdbcConfig config;
  config.persons = 120;
  PropertyGraph graph = GenerateLdbc(config);
  ConsistencyReport report = CheckConsistency(graph, LdbcSchema(), 5);
  EXPECT_TRUE(report.consistent())
      << (report.violations.empty() ? "" : report.violations[0].detail);
}

TEST(LdbcGeneratorTest, ReplyTreesAreAcyclicInstances) {
  LdbcConfig config;
  config.persons = 80;
  PropertyGraph graph = GenerateLdbc(config);
  // replyOf must be acyclic on the instance (comments reply to earlier
  // messages), even though the schema admits Comment->Comment loops.
  const auto& edges = graph.EdgesByLabel("replyOf");
  for (const Edge& e : edges) {
    EXPECT_GT(e.first, e.second) << "reply cycle suspect";
  }
}

TEST(LdbcGeneratorTest, ScaleFactorsGrow) {
  const auto& factors = LdbcScaleFactors();
  ASSERT_EQ(factors.size(), 6u);  // paper Tab 3: SF 0.1 .. 30
  EXPECT_STREQ(factors.front().name, "0.1");
  EXPECT_STREQ(factors.back().name, "30");
  for (size_t i = 1; i < factors.size(); ++i) {
    EXPECT_GT(factors[i].persons, factors[i - 1].persons);
  }
}

TEST(WorkloadTest, LdbcCountsMatchTab4) {
  const auto& queries = LdbcWorkload();
  EXPECT_EQ(queries.size(), 30u);
  size_t recursive = 0;
  for (const WorkloadQuery& q : queries) {
    if (q.recursive) ++recursive;
  }
  // Tab 4: 18 recursive, 12 non-recursive.
  EXPECT_EQ(recursive, 18u);
}

TEST(WorkloadTest, YagoCounts) {
  const auto& queries = YagoWorkload();
  EXPECT_EQ(queries.size(), 18u);
  for (const WorkloadQuery& q : queries) {
    EXPECT_TRUE(q.recursive) << q.id;  // §5.3: all YAGO queries are RQ
  }
}

TEST(WorkloadTest, AllQueriesParseAndClassify) {
  for (const auto* workload : {&LdbcWorkload(), &YagoWorkload()}) {
    for (const WorkloadQuery& q : *workload) {
      auto parsed = ParseWorkloadQuery(q);
      ASSERT_TRUE(parsed.ok()) << q.id << ": " << parsed.status().ToString();
      EXPECT_EQ(parsed->IsRecursive(), q.recursive) << q.id;
      EXPECT_EQ(parsed->head_vars,
                (std::vector<std::string>{"x1", "x2"}))
          << q.id;
    }
  }
}

TEST(WorkloadTest, LdbcQueriesUseDeclaredLabelsOnly) {
  GraphSchema schema = LdbcSchema();
  for (const WorkloadQuery& q : LdbcWorkload()) {
    auto parsed = ParseWorkloadQuery(q);
    ASSERT_TRUE(parsed.ok());
    for (const Cqt& cqt : parsed->disjuncts) {
      for (const Relation& rel : cqt.relations) {
        for (const std::string& label : CollectEdgeLabels(rel.path)) {
          EXPECT_TRUE(schema.HasEdgeLabel(label)) << q.id << ": " << label;
        }
      }
    }
  }
}

TEST(WorkloadTest, YagoQueriesUseDeclaredLabelsOnly) {
  GraphSchema schema = YagoSchema();
  for (const WorkloadQuery& q : YagoWorkload()) {
    auto parsed = ParseWorkloadQuery(q);
    ASSERT_TRUE(parsed.ok());
    for (const Cqt& cqt : parsed->disjuncts) {
      for (const Relation& rel : cqt.relations) {
        for (const std::string& label : CollectEdgeLabels(rel.path)) {
          EXPECT_TRUE(schema.HasEdgeLabel(label)) << q.id << ": " << label;
        }
      }
    }
  }
}

TEST(WorkloadTest, YagoRewriteOutcomes) {
  // §5.2: exactly one YAGO query (Y7) reverts; 16 queries get their
  // isLocatedIn+ eliminated (Tab 6); Y13 is enriched without elimination.
  GraphSchema schema = YagoSchema();
  std::set<std::string> reverted, eliminated;
  for (const WorkloadQuery& q : YagoWorkload()) {
    auto parsed = ParseWorkloadQuery(q);
    ASSERT_TRUE(parsed.ok());
    auto result = RewriteQuery(*parsed, schema);
    ASSERT_TRUE(result.ok()) << q.id << ": " << result.status().ToString();
    if (result->reverted) reverted.insert(q.id);
    if (result->stats.eliminated_closures() > 0) eliminated.insert(q.id);
  }
  EXPECT_EQ(reverted, (std::set<std::string>{"Y7"}));
  EXPECT_EQ(eliminated.size(), 16u) << [&] {
    std::string all;
    for (const auto& id : eliminated) all += id + " ";
    return all;
  }();
  EXPECT_FALSE(eliminated.count("Y7"));
  EXPECT_FALSE(eliminated.count("Y13"));
}

TEST(WorkloadTest, LdbcTcEliminationMatchesPaper) {
  // §5.4: the transitive closure can be removed in exactly 5 of the 30
  // LDBC queries (the isLocatedIn+ ones: Y1, Y2, Y3, Y4, Y6).
  GraphSchema schema = LdbcSchema();
  std::set<std::string> eliminated;
  for (const WorkloadQuery& q : LdbcWorkload()) {
    auto parsed = ParseWorkloadQuery(q);
    ASSERT_TRUE(parsed.ok());
    auto result = RewriteQuery(*parsed, schema);
    ASSERT_TRUE(result.ok()) << q.id << ": " << result.status().ToString();
    if (result->stats.eliminated_closures() > 0) eliminated.insert(q.id);
  }
  EXPECT_EQ(eliminated,
            (std::set<std::string>{"Y1", "Y2", "Y3", "Y4", "Y6"}));
}

TEST(WorkloadTest, LdbcCypherExpressibleSubset) {
  // §5.5 reports 15 of 30 LDBC queries expressible in Cypher; our
  // GP2Cypher accepts 18 because it also handles closures of reversed
  // edges and bounded repeats as variable-length patterns. All queries
  // with branching/conjunction/compound closures are rejected either way.
  size_t expressible = 0;
  for (const WorkloadQuery& q : LdbcWorkload()) {
    auto parsed = ParseWorkloadQuery(q);
    ASSERT_TRUE(parsed.ok());
    if (IsCypherExpressible(*parsed)) ++expressible;
  }
  EXPECT_EQ(expressible, 18u);
}

}  // namespace
}  // namespace gqopt

#include <gtest/gtest.h>

#include "schema/graph_schema.h"
#include "schema/schema_parser.h"
#include "schema/symbol_table.h"
#include "test_fixtures.h"

namespace gqopt {
namespace {

TEST(SymbolTableTest, InternsAndFinds) {
  SymbolTable table;
  SymbolId a = table.Intern("PERSON");
  SymbolId b = table.Intern("CITY");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("PERSON"), a);  // idempotent
  EXPECT_EQ(table.Name(a), "PERSON");
  EXPECT_EQ(table.Find("CITY"), b);
  EXPECT_FALSE(table.Find("REGION").has_value());
  EXPECT_EQ(table.size(), 2u);
}

TEST(GraphSchemaTest, Fig1Shape) {
  GraphSchema schema = testing::Fig1Schema();
  // Fig 1: five node labels, seven edges (Example 1 / Example 9).
  EXPECT_EQ(schema.num_node_labels(), 5u);
  EXPECT_EQ(schema.num_triples(), 7u);
  EXPECT_TRUE(schema.HasNodeLabel("PERSON"));
  EXPECT_TRUE(schema.HasEdgeLabel("isLocatedIn"));
  EXPECT_FALSE(schema.HasEdgeLabel("unknown"));
}

TEST(GraphSchemaTest, TriplesForEdge) {
  GraphSchema schema = testing::Fig1Schema();
  auto triples = schema.TriplesForEdge("isLocatedIn");
  ASSERT_EQ(triples.size(), 3u);
  auto owns = schema.TriplesForEdge("owns");
  ASSERT_EQ(owns.size(), 1u);
  // Example 9: t1 = (PERSON, owns, PROPERTY).
  EXPECT_EQ(owns[0].source_label, "PERSON");
  EXPECT_EQ(owns[0].target_label, "PROPERTY");
}

TEST(GraphSchemaTest, SourceAndTargetLabelSets) {
  GraphSchema schema = testing::Fig1Schema();
  auto sources = schema.SourceLabelsOf("isLocatedIn");
  EXPECT_EQ(sources, (std::set<std::string>{"CITY", "PROPERTY", "REGION"}));
  auto targets = schema.TargetLabelsOf("isLocatedIn");
  EXPECT_EQ(targets, (std::set<std::string>{"CITY", "COUNTRY", "REGION"}));
}

TEST(GraphSchemaTest, Admits) {
  GraphSchema schema = testing::Fig1Schema();
  EXPECT_TRUE(schema.Admits("PERSON", "owns", "PROPERTY"));
  EXPECT_FALSE(schema.Admits("PERSON", "owns", "CITY"));
  EXPECT_FALSE(schema.Admits("CITY", "owns", "PROPERTY"));
}

TEST(GraphSchemaTest, AddEdgeIsIdempotent) {
  GraphSchema schema;
  schema.AddEdge("A", "e", "B");
  schema.AddEdge("A", "e", "B");
  EXPECT_EQ(schema.num_triples(), 1u);
}

TEST(GraphSchemaTest, PropertyRedeclarationConflicts) {
  GraphSchema schema;
  EXPECT_TRUE(schema.AddProperty("A", "name", PropertyType::kString).ok());
  EXPECT_TRUE(schema.AddProperty("A", "name", PropertyType::kString).ok());
  Status st = schema.AddProperty("A", "name", PropertyType::kInt);
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST(PropertyTypeTest, ParseRoundTrip) {
  for (PropertyType type :
       {PropertyType::kString, PropertyType::kInt, PropertyType::kDouble,
        PropertyType::kBool, PropertyType::kDate}) {
    auto parsed = ParsePropertyType(PropertyTypeName(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(ParsePropertyType("list").ok());
}

TEST(SchemaParserTest, ParsesNodesEdgesAndProperties) {
  auto result = ParseSchema(R"(
# YAGO extract
node PERSON {name:string, age:int}
node CITY {name:string}
edge PERSON -livesIn-> CITY
edge PERSON -isMarriedTo-> PERSON
)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const GraphSchema& schema = *result;
  EXPECT_EQ(schema.num_node_labels(), 2u);
  EXPECT_EQ(schema.num_triples(), 2u);
  ASSERT_EQ(schema.Properties("PERSON").size(), 2u);
  EXPECT_EQ(schema.Properties("PERSON")[1].type, PropertyType::kInt);
}

TEST(SchemaParserTest, ImplicitNodeFromEdge) {
  auto result = ParseSchema("edge A -e-> B\n");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->HasNodeLabel("A"));
  EXPECT_TRUE(result->HasNodeLabel("B"));
}

TEST(SchemaParserTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseSchema("nonsense\n").ok());
  EXPECT_FALSE(ParseSchema("edge A -> B\n").ok());
  EXPECT_FALSE(ParseSchema("node A {name}\n").ok());
  EXPECT_FALSE(ParseSchema("node A {name:list}\n").ok());
}

TEST(SchemaParserTest, RoundTripsToString) {
  GraphSchema schema = testing::Fig1Schema();
  auto reparsed = ParseSchema(schema.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->num_node_labels(), schema.num_node_labels());
  EXPECT_EQ(reparsed->num_triples(), schema.num_triples());
  EXPECT_EQ(reparsed->ToString(), schema.ToString());
}

}  // namespace
}  // namespace gqopt

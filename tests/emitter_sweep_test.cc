// Translator sweep over the full experiment workload: every one of the 48
// queries (and its schema-enriched form) must produce well-formed SQL, and
// the Cypher emitter must accept exactly the chain-shaped fragment.

#include <gtest/gtest.h>

#include "api/stages.h"  // white-box stage access
#include "datasets/ldbc.h"
#include "datasets/workloads.h"
#include "datasets/yago.h"
#include "graph/graph_io.h"
#include "translate/cypher_emitter.h"
#include "translate/sql_emitter.h"

namespace gqopt {
namespace {

struct SweepCase {
  std::string id;
  Ucqt baseline;
  Ucqt schema;
  bool recursive;
};

std::vector<SweepCase> Sweep(const std::vector<WorkloadQuery>& workload,
                             const GraphSchema& schema) {
  std::vector<SweepCase> out;
  for (const WorkloadQuery& wq : workload) {
    auto query = ParseWorkloadQuery(wq);
    EXPECT_TRUE(query.ok()) << wq.id;
    auto rewritten = RewriteQuery(*query, schema);
    EXPECT_TRUE(rewritten.ok()) << wq.id;
    out.push_back(SweepCase{wq.id, *query,
                            rewritten->reverted ? *query : rewritten->query,
                            wq.recursive});
  }
  return out;
}

class EmitterSweepTest : public ::testing::TestWithParam<bool> {
 protected:
  std::vector<SweepCase> Cases() {
    return GetParam() ? Sweep(LdbcWorkload(), LdbcSchema())
                      : Sweep(YagoWorkload(), YagoSchema());
  }
};

TEST_P(EmitterSweepTest, SqlEmitsForEveryQueryAndItsRewriting) {
  for (const SweepCase& c : Cases()) {
    for (const Ucqt* query : {&c.baseline, &c.schema}) {
      auto sql = EmitSql(*query);
      ASSERT_TRUE(sql.ok()) << c.id << ": " << sql.status().ToString();
      EXPECT_NE(sql->find("SELECT DISTINCT"), std::string::npos) << c.id;
      // Recursive SQL iff the query still carries a closure.
      EXPECT_EQ(query->IsRecursive(),
                sql->find("WITH RECURSIVE") != std::string::npos)
          << c.id << "\n" << *sql;
      // Balanced parentheses as a cheap well-formedness check.
      int depth = 0;
      for (char ch : *sql) {
        if (ch == '(') ++depth;
        if (ch == ')') --depth;
        ASSERT_GE(depth, 0) << c.id;
      }
      EXPECT_EQ(depth, 0) << c.id;
      EXPECT_EQ(sql->back(), ';') << c.id;
    }
  }
}

TEST_P(EmitterSweepTest, SqlViewWrappersEmitForEveryQuery) {
  SqlOptions options;
  options.as_view = true;
  for (const SweepCase& c : Cases()) {
    for (SqlDialect dialect :
         {SqlDialect::kPostgres, SqlDialect::kMySql, SqlDialect::kSqlite}) {
      options.dialect = dialect;
      auto sql = EmitSql(c.baseline, options);
      ASSERT_TRUE(sql.ok()) << c.id;
      EXPECT_NE(sql->find("VIEW"), std::string::npos) << c.id;
    }
  }
}

TEST_P(EmitterSweepTest, CypherAgreesWithExpressibilityCheck) {
  for (const SweepCase& c : Cases()) {
    bool expressible = IsCypherExpressible(c.baseline);
    auto cypher = EmitCypher(c.baseline);
    EXPECT_EQ(expressible, cypher.ok()) << c.id;
    if (cypher.ok()) {
      EXPECT_NE(cypher->find("MATCH"), std::string::npos) << c.id;
      EXPECT_NE(cypher->find("RETURN DISTINCT x1, x2"), std::string::npos)
          << c.id;
    } else {
      EXPECT_EQ(cypher.status().code(), StatusCode::kUnimplemented)
          << c.id;
    }
  }
}

TEST_P(EmitterSweepTest, SqlEmissionIsDeterministic) {
  for (const SweepCase& c : Cases()) {
    auto first = EmitSql(c.schema);
    auto second = EmitSql(c.schema);
    ASSERT_TRUE(first.ok() && second.ok()) << c.id;
    EXPECT_EQ(*first, *second) << c.id;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, EmitterSweepTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Ldbc" : "Yago";
                         });

TEST(FileIoTest, WriteThenReadRoundTrips) {
  std::string path = ::testing::TempDir() + "/gqopt_io_test.txt";
  ASSERT_TRUE(WriteFile(path, "hello\nworld\n").ok());
  auto text = ReadFile(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "hello\nworld\n");
  EXPECT_FALSE(ReadFile(path + ".missing").ok());
}

}  // namespace
}  // namespace gqopt

// Robustness suite for the concurrent serving layer (docs/ROBUSTNESS.md):
// multi-thread query storms against the snapshot-swapped Database facade
// (results must be bit-identical to a serial run), mutation during
// traffic, the PreparedQuery TOCTOU regression, admission-control
// shedding, the degradation ladder, client-side retry/backoff, the
// bounded LRU plan cache, and the fault-injection matrix.
//
// gtest assertions are not thread-safe, so storm threads record failures
// into pre-sized slots and the main thread asserts after joining.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "api/server.h"
#include "datasets/yago.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/status.h"

namespace gqopt {
namespace api {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

// The fault injector is process-global: every test that touches it (or
// runs under it) goes through this guard so state never leaks between
// tests.
class FaultGuard {
 public:
  FaultGuard() { Reset(); }
  ~FaultGuard() { Reset(); }
  static void Reset() {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().ResetCounters();
  }
};

// YAGO workload shapes with distinct plans and non-trivial results.
const char* const kQueries[] = {
    "x1, x2 <- (x1, owns/isLocatedIn, x2)",
    "x1, x2 <- (x1, livesIn/isLocatedIn+, x2)",
    "x1, x2 <- (x1, owns, x2)",
};
constexpr size_t kNumQueries = 3;

std::vector<std::vector<NodeId>> BaselineRows(const Database& db,
                                              const std::string& text,
                                              const ExecOptions& options) {
  Session session(db, options);
  auto result = session.Query(text);
  EXPECT_TRUE(result.ok()) << text << ": " << result.status().ToString();
  if (!result.ok()) return {};
  return result->SortedRows();
}

bool HasStagePrefix(const Status& status) {
  const std::string& m = status.message();
  return m.starts_with("parse: ") || m.starts_with("rewrite: ") ||
         m.starts_with("plan: ") || m.starts_with("execute: ") ||
         m.starts_with("overloaded: ");
}

// ---- Concurrent storms: bit-identical to serial ----------------------------

// N threads through bare Sessions with the plan cache off: every request
// runs the full cold pipeline concurrently, so the lazy cache builds
// underneath (snapshot, catalog edge tables, statistics, CSR indexes)
// race and must all be properly synchronized.
TEST(ServingStormTest, ColdStormMatchesSerial) {
  FaultGuard faults;
  Database db(YagoSchema(), GenerateYago({.persons = 120, .seed = 7}));
  ExecOptions options = ExecOptions::FromEnv();
  options.use_plan_cache = false;
  options.timeout_ms = 0;

  std::vector<std::vector<std::vector<NodeId>>> baseline(kNumQueries);
  for (size_t q = 0; q < kNumQueries; ++q) {
    baseline[q] = BaselineRows(db, kQueries[q], options);
    ASSERT_FALSE(baseline[q].empty()) << kQueries[q];
  }

  constexpr size_t kThreads = 4;
  constexpr int kReps = 4;
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session session(db, options);
      for (int rep = 0; rep < kReps; ++rep) {
        for (size_t q = 0; q < kNumQueries; ++q) {
          auto result = session.Query(kQueries[q]);
          if (!result.ok()) {
            errors[t] = result.status().ToString();
            return;
          }
          if (result->SortedRows() != baseline[q]) {
            errors[t] = std::string("rows diverged on ") + kQueries[q];
            return;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) EXPECT_EQ(errors[t], "");
}

// The same storm through the serving layer with the plan cache on: the
// first requests cold-build the cached entries concurrently, the rest is
// the cached fast path. Nothing is shed at this queue capacity and the
// serving counters must reconcile.
TEST(ServingStormTest, CachedServerStormMatchesSerial) {
  FaultGuard faults;
  Database db(YagoSchema(), GenerateYago({.persons = 120, .seed = 7}));
  // This test asserts cache hits; pin the cache on (the explicit setter
  // outranks the GQOPT_PLAN_CACHE=0 tier-1 matrix).
  db.set_plan_cache_enabled(true);
  ExecOptions options = ExecOptions::FromEnv();
  options.use_plan_cache = true;
  options.timeout_ms = 0;

  std::vector<std::vector<std::vector<NodeId>>> baseline(kNumQueries);
  for (size_t q = 0; q < kNumQueries; ++q) {
    baseline[q] = BaselineRows(db, kQueries[q], options);
  }

  ServerOptions server_options;
  server_options.workers = 4;
  server_options.queue_capacity = 64;
  Server server(db, server_options);

  constexpr size_t kThreads = 4;
  constexpr int kReps = 4;
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < kReps; ++rep) {
        for (size_t q = 0; q < kNumQueries; ++q) {
          auto response = server.Query(kQueries[q], options);
          if (!response.result.ok()) {
            errors[t] = response.result.status().ToString();
            return;
          }
          if (response.result->SortedRows() != baseline[q]) {
            errors[t] = std::string("rows diverged on ") + kQueries[q];
            return;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) EXPECT_EQ(errors[t], "");

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.admitted, kThreads * kReps * kNumQueries);
  EXPECT_EQ(stats.completed, stats.admitted);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.shed_queue_full, 0u);
  EXPECT_GT(db.plan_cache_stats().hits, 0u);
}

// ---- Mutation during traffic -----------------------------------------------

// Readers storm while a writer adds nodes (which bumps the generation and
// invalidates the publication, but cannot change any query's result
// rows). Every OK result must still be bit-identical to the baseline;
// the only acceptable failure is the typed stale-handle error that
// surfaces when the mutation storm outpaces Session::Query's bounded
// re-prepares.
TEST(ServingMutationTest, MutationDuringTrafficStaysSound) {
  FaultGuard faults;
  Database db(YagoSchema(), GenerateYago({.persons = 120, .seed = 7}));
  // Pin the legacy write path: this test asserts the full
  // rebuild-per-mutation generation counting.
  db.set_delta_enabled(false);
  ExecOptions options = ExecOptions::FromEnv();
  options.timeout_ms = 0;
  auto baseline = BaselineRows(db, kQueries[0], options);
  uint64_t start_generation = db.generation();

  constexpr size_t kReaders = 3;
  constexpr int kMutations = 40;
  std::vector<std::string> errors(kReaders);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Session session(db, options);
      while (!stop.load(std::memory_order_acquire)) {
        auto result = session.Query(kQueries[0]);
        if (result.ok()) {
          if (result->SortedRows() != baseline) {
            errors[t] = "rows diverged under mutation";
            return;
          }
        } else if (result.status().message().find("stale prepared query") ==
                   std::string::npos) {
          errors[t] = result.status().ToString();
          return;
        }
      }
    });
  }
  for (int i = 0; i < kMutations; ++i) {
    db.AddNode("Person");
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& thread : readers) thread.join();

  for (size_t t = 0; t < kReaders; ++t) EXPECT_EQ(errors[t], "");
  EXPECT_EQ(db.generation(), start_generation + kMutations);
  EXPECT_GE(db.plan_cache_stats().invalidations, 1u);
}

// The PreparedQuery TOCTOU regression: a handle prepared just before a
// mutation lands must either execute on its captured snapshot (correct
// rows) or refuse with the typed stale error — never run the old plan
// against swapped-out state.
TEST(ServingMutationTest, PreparedHandleExecuteVsConcurrentMutator) {
  FaultGuard faults;
  Database db(YagoSchema(), GenerateYago({.persons = 120, .seed = 7}));
  db.set_delta_enabled(false);  // the stale-or-refuse contract is legacy
  ExecOptions options;
  options.timeout_ms = 0;
  auto baseline = BaselineRows(db, kQueries[0], options);

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    while (!stop.load(std::memory_order_acquire)) {
      db.AddNode("Person");
      std::this_thread::yield();
    }
  });

  Session session(db, options);
  std::string error;
  for (int i = 0; i < 200 && error.empty(); ++i) {
    auto prepared = db.Prepare(kQueries[0], options);
    if (!prepared.ok()) {
      error = prepared.status().ToString();
      break;
    }
    auto result = (*prepared)->Execute(session);
    if (result.ok()) {
      if (result->SortedRows() != baseline) error = "rows diverged";
    } else if (result.status().message().find("stale prepared query") ==
               std::string::npos) {
      error = result.status().ToString();
    }
  }
  stop.store(true, std::memory_order_release);
  mutator.join();
  EXPECT_EQ(error, "");
}

// Delta-mode storm: a writer appends through the delta store — with the
// kDeltaMerge fault injected so a third of the merges fail, and periodic
// explicit compactions — while readers query concurrently. Inserts are
// monotone, so every read must return a superset of the pre-storm rows
// and a reader's successive results must never shrink; a torn or
// partially merged view would violate both. tools/run_tier1.sh runs this
// under --tsan.
TEST(ServingMutationTest, DeltaMutateQueryStormUnderMergeFaults) {
  FaultGuard faults;
  Database db(YagoSchema(), GenerateYago({.persons = 80, .seed = 13}));
  db.set_delta_enabled(true);
  db.set_delta_merge_rows(64);
  ExecOptions options;
  options.timeout_ms = 0;
  const char* query = "x1, x2 <- (x1, owns, x2)";
  auto baseline = BaselineRows(db, query, options);
  FaultInjector::Global().Arm(FaultPoint::kDeltaMerge, FaultKind::kAlloc,
                              /*every_n=*/3);

  constexpr size_t kReaders = 3;
  constexpr int kWrites = 120;
  std::vector<std::string> errors(kReaders);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Session session(db, options);
      size_t last_rows = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto result = session.Query(query);
        if (!result.ok()) {
          errors[t] = result.status().ToString();
          return;
        }
        auto rows = result->SortedRows();
        if (rows.size() < last_rows) {
          errors[t] = "rows shrank under insert-only traffic";
          return;
        }
        if (!std::includes(rows.begin(), rows.end(), baseline.begin(),
                           baseline.end())) {
          errors[t] = "pre-storm rows went missing";
          return;
        }
        last_rows = rows.size();
      }
    });
  }
  std::string write_error;
  for (int i = 0; i < kWrites && write_error.empty(); ++i) {
    NodeId person = db.AddNode("PERSON");
    NodeId property = db.AddNode("PROPERTY");
    Status added = db.AddEdge(person, "owns", property);
    if (!added.ok()) write_error = added.ToString();
    // Explicit compactions race the injected failures: a failed merge
    // keeps the rows pending, a later one lands them.
    if (i % 16 == 15) (void)db.Compact();
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& thread : readers) thread.join();
  EXPECT_EQ(write_error, "");
  for (size_t t = 0; t < kReaders; ++t) EXPECT_EQ(errors[t], "");

  // Disarmed, the drain compacts everything and the final table holds
  // exactly the baseline plus every written edge.
  FaultGuard::Reset();
  ASSERT_TRUE(db.Compact().ok());
  EXPECT_EQ(db.delta_stats().pending_edges, 0u);
  EXPECT_EQ(db.delta_stats().pending_nodes, 0u);
  Session session(db, options);
  auto drained = session.Query(query);
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_EQ(drained->rows(), baseline.size() + kWrites);
  inc::DeltaStats stats = db.delta_stats();
  EXPECT_GE(stats.compactions, 1u);
  EXPECT_GE(stats.failed_compactions, 1u);
}

// ---- Shedding and the degradation ladder -----------------------------------

// A chain graph whose transitive closure takes real time: the occupier
// thread keeps the single-slot queue busy so admission control and the
// pressure ladder engage deterministically enough to observe.
std::unique_ptr<Database> ChainDb(int nodes) {
  auto db = std::make_unique<Database>();
  for (int i = 0; i < nodes; ++i) db->AddNode("Node");
  for (int i = 0; i + 1 < nodes; ++i) {
    EXPECT_TRUE(db->AddEdge(i, "next", i + 1).ok());
  }
  return db;
}

TEST(ServingShedTest, FullQueueShedsWithTypedOverloadedStatus) {
  FaultGuard faults;
  auto db = ChainDb(600);
  ExecOptions slow;
  slow.apply_schema_rewrite = false;  // the chain db has no schema
  slow.timeout_ms = 0;
  ExecOptions cheap = slow;

  ServerOptions server_options;
  server_options.workers = 1;
  server_options.queue_capacity = 1;
  Server server(*db, server_options);

  std::atomic<bool> stop{false};
  std::thread occupier([&] {
    while (!stop.load(std::memory_order_acquire)) {
      server.Query("x1, x2 <- (x1, next+, x2)", slow);
    }
  });

  // While a slow closure occupies the only queue slot, EXPLAIN through
  // the serving layer reports the ladder at work and a cheap query sheds
  // with the typed, retryable "overloaded: " status.
  bool observed_shed = false;
  bool observed_degraded_explain = false;
  for (int attempt = 0; attempt < 200 && !observed_shed; ++attempt) {
    if (server.queue_depth() < 1) {
      std::this_thread::yield();
      continue;
    }
    if (!observed_degraded_explain) {
      auto explained = server.Explain("x1, x2 <- (x1, next, x2)", cheap);
      if (explained.ok() &&
          explained->find("degradation: greedy-planner") !=
              std::string::npos) {
        observed_degraded_explain = true;
      }
    }
    auto response = server.Query("x1, x2 <- (x1, next, x2)", cheap);
    if (!response.result.ok()) {
      const Status& status = response.result.status();
      EXPECT_TRUE(status.message().starts_with("overloaded: "))
          << status.ToString();
      EXPECT_EQ(ClassifyError(status), QueryStage::kOverloaded);
      EXPECT_TRUE(Server::IsRetryable(status));
      observed_shed = true;
    }
  }
  stop.store(true, std::memory_order_release);
  occupier.join();

  EXPECT_TRUE(observed_shed);
  EXPECT_TRUE(observed_degraded_explain);
  EXPECT_GE(server.stats().shed_queue_full, 1u);
}

TEST(DegradationTest, PressureLevels) {
  EXPECT_EQ(Server::PressureLevel(0, 16), 0);
  EXPECT_EQ(Server::PressureLevel(7, 16), 0);
  EXPECT_EQ(Server::PressureLevel(8, 16), 1);   // >= 1/2 full
  EXPECT_EQ(Server::PressureLevel(11, 16), 1);
  EXPECT_EQ(Server::PressureLevel(12, 16), 2);  // >= 3/4 full
  EXPECT_EQ(Server::PressureLevel(16, 16), 2);
  EXPECT_EQ(Server::PressureLevel(1, 1), 2);
  EXPECT_EQ(Server::PressureLevel(5, 0), 0);  // capacity 0: ladder off
}

TEST(DegradationTest, ApplyDegradationRungs) {
  ExecOptions options;
  options.planner = PlannerKind::kDp;
  DegradationReport none = Server::ApplyDegradation(0, &options);
  EXPECT_FALSE(none.any());
  EXPECT_EQ(none.Summary(), "none");
  EXPECT_EQ(options.planner, PlannerKind::kDp);

  DegradationReport level1 = Server::ApplyDegradation(1, &options);
  EXPECT_TRUE(level1.greedy_planner);
  EXPECT_FALSE(level1.skipped_rewrite);
  EXPECT_EQ(options.planner, PlannerKind::kGreedy);
  EXPECT_TRUE(options.apply_schema_rewrite);
  EXPECT_FALSE(options.allow_stale_statistics);

  ExecOptions full;
  full.planner = PlannerKind::kDp;
  DegradationReport level2 = Server::ApplyDegradation(2, &full);
  EXPECT_TRUE(level2.greedy_planner);
  EXPECT_TRUE(level2.skipped_rewrite);
  EXPECT_FALSE(full.apply_schema_rewrite);
  EXPECT_TRUE(full.allow_stale_statistics);
  EXPECT_NE(level2.Summary().find("greedy-planner"), std::string::npos);
  EXPECT_NE(level2.Summary().find("pressure 2"), std::string::npos);

  // Already-greedy options have nothing to downgrade at level 1.
  ExecOptions greedy;
  greedy.planner = PlannerKind::kGreedy;
  EXPECT_FALSE(Server::ApplyDegradation(1, &greedy).greedy_planner);
}

// RefreshStatistics retires the publication but keeps the same-generation
// predecessor: allow_stale_statistics serves it (reported on the handle)
// instead of stalling on the rebuild.
TEST(DegradationTest, StaleStatisticsServing) {
  FaultGuard faults;
  Database db(YagoSchema(), GenerateYago({.persons = 60, .seed = 7}));
  // Pin legacy mutation semantics: the final assertion relies on AddNode
  // discarding the cached (stale-planned) entry, whereas delta mode
  // deliberately retains it across data mutations.
  db.set_delta_enabled(false);
  ExecOptions options;
  ASSERT_TRUE(db.Prepare(kQueries[0], options).ok());  // publish a snapshot
  db.RefreshStatistics();

  bool served_stale = false;
  SnapshotPtr stale = db.StaleOkSnapshot(&served_stale);
  EXPECT_TRUE(served_stale);
  EXPECT_EQ(stale->generation(), db.generation());

  ExecOptions degraded = options;
  degraded.allow_stale_statistics = true;
  db.RefreshStatistics();
  auto prepared = db.Prepare(kQueries[0], degraded);
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE((*prepared)->stale_statistics());

  // A mutation kills the old publication entirely: no stale serving
  // across generations, the next prepare rebuilds fresh.
  db.AddNode("Person");
  auto fresh = db.Prepare(kQueries[0], degraded);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE((*fresh)->stale_statistics());
}

// ---- Retry and backoff -----------------------------------------------------

TEST(RetryTest, IsRetryable) {
  EXPECT_TRUE(Server::IsRetryable(
      Status::ResourceExhausted("overloaded: request queue full")));
  EXPECT_TRUE(Server::IsRetryable(
      Status::DeadlineExceeded("overloaded: deadline expired while queued")));
  EXPECT_TRUE(Server::IsRetryable(
      Status::DeadlineExceeded("execute: transitive closure timed out")));
  // Deterministic pipeline failures are never retried.
  EXPECT_FALSE(Server::IsRetryable(
      Status::InvalidArgument("parse: unexpected token")));
  EXPECT_FALSE(Server::IsRetryable(
      Status::ResourceExhausted("plan: allocation failed")));
  EXPECT_FALSE(Server::IsRetryable(
      Status::InvalidArgument("execute: stale prepared query")));
  EXPECT_FALSE(Server::IsRetryable(Status::OK()));
}

TEST(RetryTest, BackoffMillisCappedJitteredExponential) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 100;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    int64_t full = std::min<int64_t>(100, 5 * (int64_t{1} << (attempt - 1)));
    Rng rng(42);
    int64_t backoff = Server::BackoffMillis(policy, attempt, &rng);
    EXPECT_GE(backoff, full / 2) << "attempt " << attempt;
    EXPECT_LE(backoff, full) << "attempt " << attempt;
  }
  // Deterministic under one seed.
  Rng a(7), b(7);
  EXPECT_EQ(Server::BackoffMillis(policy, 3, &a),
            Server::BackoffMillis(policy, 3, &b));
  // Non-positive base backoff disables sleeping.
  RetryPolicy zero;
  zero.initial_backoff_ms = 0;
  Rng rng(1);
  EXPECT_EQ(Server::BackoffMillis(zero, 1, &rng), 0);
}

// An injected execute-stage deadline on every attempt makes QueryWithRetry
// exhaust its budget deterministically: exactly max_attempts attempts,
// the retries counter reconciles, and the final error keeps its stage
// prefix.
TEST(RetryTest, QueryWithRetryExhaustsAttemptsOnInjectedDeadline) {
  FaultGuard faults;
  Database db(YagoSchema(), GenerateYago({.persons = 60, .seed = 7}));
  Server server(db);
  FaultInjector::Global().Arm(FaultPoint::kExecute, FaultKind::kDeadline);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 2;
  auto response = server.QueryWithRetry(kQueries[0], ExecOptions(), policy);
  EXPECT_FALSE(response.result.ok());
  EXPECT_EQ(response.attempts, 3);
  EXPECT_TRUE(response.result.status().message().starts_with("execute: "))
      << response.result.status().ToString();
  EXPECT_EQ(server.stats().retries, 2u);

  FaultGuard::Reset();
  auto recovered = server.QueryWithRetry(kQueries[0], ExecOptions(), policy);
  EXPECT_TRUE(recovered.result.ok());
  EXPECT_EQ(recovered.attempts, 1);
}

// ---- Fault-injection matrix ------------------------------------------------

// Every injection point x kind, each under 4-thread mixed traffic: the
// process must not crash, successes must be bit-identical to the serial
// baseline, and every failure must carry a stage prefix from the error
// taxonomy. (Some combinations are deliberate no-ops — e.g. deadline at a
// CSR build — and simply pass traffic through.)
TEST(FaultMatrixTest, AllPointsAllKindsUnderConcurrentTraffic) {
  FaultGuard faults;
  constexpr FaultPoint kPoints[] = {
      FaultPoint::kParse,        FaultPoint::kRewrite,
      FaultPoint::kPlan,         FaultPoint::kExecute,
      FaultPoint::kSnapshotBuild, FaultPoint::kCatalogBuild,
      FaultPoint::kStatsBuild,   FaultPoint::kCsrBuild,
  };
  constexpr FaultKind kKinds[] = {
      FaultKind::kDeadline,
      FaultKind::kAlloc,
      FaultKind::kInvalidate,
  };

  ExecOptions options;  // dop 1: injected bad_alloc must unwind through
  options.timeout_ms = 0;  // the facade boundary, not a pool worker
  Database baseline_db(YagoSchema(), GenerateYago({.persons = 60, .seed = 7}));
  std::vector<std::vector<std::vector<NodeId>>> baseline(kNumQueries);
  for (size_t q = 0; q < kNumQueries; ++q) {
    baseline[q] = BaselineRows(baseline_db, kQueries[q], options);
  }

  for (FaultPoint point : kPoints) {
    for (FaultKind kind : kKinds) {
      // A fresh database per combination: the lazy caches are cold, so
      // build points actually probe.
      Database db(YagoSchema(), GenerateYago({.persons = 60, .seed = 7}));
      ServerOptions server_options;
      server_options.workers = 2;
      server_options.queue_capacity = 64;
      Server server(db, server_options);
      FaultGuard::Reset();
      FaultInjector::Global().Arm(point, kind, /*every_n=*/2);

      constexpr size_t kThreads = 4;
      std::vector<std::string> errors(kThreads);
      std::vector<std::thread> threads;
      for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          for (int rep = 0; rep < 6; ++rep) {
            size_t q = (t + rep) % kNumQueries;
            auto response = server.Query(kQueries[q], options);
            if (response.result.ok()) {
              if (response.result->SortedRows() != baseline[q]) {
                errors[t] = std::string("rows diverged on ") + kQueries[q];
                return;
              }
            } else if (!HasStagePrefix(response.result.status())) {
              errors[t] = std::string("untyped failure: ") +
                          response.result.status().ToString();
              return;
            }
          }
        });
      }
      for (auto& thread : threads) thread.join();
      for (size_t t = 0; t < kThreads; ++t) {
        EXPECT_EQ(errors[t], "")
            << FaultPointName(point) << "=" << FaultKindName(kind);
      }
    }
  }
}

// ---- Memory governance under load ------------------------------------------

// Storm a light+heavy query mix through a Server whose database budget is
// about a quarter of the heavy query's natural peak: every failure must be
// a typed "resource:" abort or "overloaded:" shed (never a crash, a
// bad_alloc, or an untyped error), every admitted result must stay
// bit-identical to the pre-limit baseline, and the budget must be whole
// again once the storm drains.
TEST(ServingStormTest, MemoryStormUnderSmallServerBudget) {
  FaultGuard faults;
  Database db(YagoSchema(), GenerateYago({.persons = 200, .seed = 11}));
  ExecOptions options;
  options.timeout_ms = 0;

  const char* kHeavy = "x1, x2 <- (x1, livesIn/isLocatedIn+/dealsWith+, x2)";
  const char* kLight = "x1, x2 <- (x1, owns, x2)";

  // Measure the natural peak and snapshot both baselines before the
  // ceiling drops.
  Session probe(db, options);
  auto unbounded = probe.Query(kHeavy);
  ASSERT_TRUE(unbounded.ok()) << unbounded.status().ToString();
  const std::vector<std::vector<NodeId>> heavy_rows = unbounded->SortedRows();
  const int64_t natural_peak = unbounded->mem_peak_bytes;
  ASSERT_GT(natural_peak, 0);
  auto light_result = probe.Query(kLight);
  ASSERT_TRUE(light_result.ok()) << light_result.status().ToString();
  const std::vector<std::vector<NodeId>> light_rows =
      light_result->SortedRows();

  // Standing consumption before the storm: zero unsharded, the partition's
  // per-shard tracker charges when GQOPT_SHARDS is ambient. Query-transient
  // reservations must drain back to exactly this figure.
  const int64_t standing = db.memory().consumed();

  int64_t budget = natural_peak / 4;
  if (budget < 1) budget = 1;
  db.set_memory_limit(budget);

  ServerOptions server_options;
  server_options.workers = 4;
  server_options.queue_capacity = 64;
  Server server(db, server_options);

  constexpr size_t kThreads = 6;
  std::vector<std::string> errors(kThreads);
  std::atomic<int> heavy_rejections{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 8; ++rep) {
        bool heavy = (t + rep) % 2 == 0;
        const char* query = heavy ? kHeavy : kLight;
        auto response = server.Query(query, options);
        if (response.result.ok()) {
          const auto& expected = heavy ? heavy_rows : light_rows;
          if (response.result->SortedRows() != expected) {
            errors[t] = std::string("rows diverged on ") + query;
            return;
          }
        } else {
          QueryStage stage = ClassifyError(response.result.status());
          if (stage != QueryStage::kResource &&
              stage != QueryStage::kOverloaded) {
            errors[t] = std::string("untyped failure under budget: ") +
                        response.result.status().ToString();
            return;
          }
          if (heavy) heavy_rejections.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) EXPECT_EQ(errors[t], "");
  // At a quarter of its own natural peak, the heavy query cannot have
  // sailed through every time.
  EXPECT_GT(heavy_rejections.load(), 0);
  // The drained storm returned every reservation: the ledger is back to
  // its standing level, and lifting the ceiling restores full service
  // with identical rows.
  EXPECT_EQ(db.memory().consumed(), standing);
  db.set_memory_limit(0);
  auto after = Session(db, options).Query(kHeavy);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->SortedRows(), heavy_rows);
}

// ---- FaultInjector unit behavior -------------------------------------------

TEST(FaultInjectorTest, EveryNStride) {
  FaultGuard faults;
  FaultInjector& injector = FaultInjector::Global();
  injector.Arm(FaultPoint::kParse, FaultKind::kDeadline, /*every_n=*/3);
  int fired = 0;
  for (int i = 0; i < 6; ++i) {
    if (injector.Probe(FaultPoint::kParse) != FaultKind::kNone) ++fired;
  }
  EXPECT_EQ(fired, 2);  // probes 3 and 6
  EXPECT_EQ(injector.probes(FaultPoint::kParse), 6u);
  EXPECT_EQ(injector.fires(FaultPoint::kParse), 2u);
  // Disarmed points count nothing.
  EXPECT_EQ(injector.Probe(FaultPoint::kPlan), FaultKind::kNone);
  EXPECT_EQ(injector.probes(FaultPoint::kPlan), 0u);
}

TEST(FaultInjectorTest, ArmFromSpecParsing) {
  FaultGuard faults;
  FaultInjector& injector = FaultInjector::Global();
  EXPECT_TRUE(injector.ArmFromSpec("plan=deadline:3,execute=alloc"));
  EXPECT_EQ(injector.armed(FaultPoint::kPlan), FaultKind::kDeadline);
  EXPECT_EQ(injector.armed(FaultPoint::kExecute), FaultKind::kAlloc);
  EXPECT_EQ(injector.armed(FaultPoint::kParse), FaultKind::kNone);
  std::string description = injector.Describe();
  EXPECT_NE(description.find("plan=deadline"), std::string::npos);
  EXPECT_NE(description.find("execute=alloc"), std::string::npos);

  // Malformed entries report failure but arm the valid prefix.
  EXPECT_FALSE(injector.ArmFromSpec("snapshot-build=alloc,bogus"));
  EXPECT_EQ(injector.armed(FaultPoint::kSnapshotBuild), FaultKind::kAlloc);
  EXPECT_FALSE(injector.ArmFromSpec("plan=frobnicate"));

  // The empty spec disarms everything.
  EXPECT_TRUE(injector.ArmFromSpec(""));
  for (size_t p = 0; p < kNumFaultPoints; ++p) {
    EXPECT_EQ(injector.armed(static_cast<FaultPoint>(p)), FaultKind::kNone);
  }
}

// ---- Bounded LRU plan cache ------------------------------------------------

TEST(PlanCacheLruTest, EvictsLeastRecentlyUsedAtCapacity) {
  FaultGuard faults;
  Database db(YagoSchema(), GenerateYago({.persons = 60, .seed = 7}));
  db.set_plan_cache_enabled(true);  // outranks the GQOPT_PLAN_CACHE=0 matrix
  db.set_plan_cache_capacity(2);
  ExecOptions options;

  ASSERT_TRUE(db.Prepare(kQueries[0], options).ok());
  ASSERT_TRUE(db.Prepare(kQueries[1], options).ok());
  // Touch query 0: it becomes most-recent, so inserting query 2 must
  // evict query 1.
  bool hit = false;
  ASSERT_TRUE(db.Prepare(kQueries[0], options, &hit).ok());
  EXPECT_TRUE(hit);
  ASSERT_TRUE(db.Prepare(kQueries[2], options).ok());

  PlanCacheStats stats = db.plan_cache_stats();
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  ASSERT_TRUE(db.Prepare(kQueries[0], options, &hit).ok());
  EXPECT_TRUE(hit) << "recently-touched entry must survive the eviction";
  ASSERT_TRUE(db.Prepare(kQueries[1], options, &hit).ok());
  EXPECT_FALSE(hit) << "LRU entry must have been evicted";
}

TEST(PlanCacheLruTest, CapacityFromEnvironment) {
  FaultGuard faults;
  ExecOptions options;
  {
    ScopedEnv cap("GQOPT_PLAN_CACHE_CAP", "1");
    Database db(YagoSchema(), GenerateYago({.persons = 60, .seed = 7}));
    db.set_plan_cache_enabled(true);  // outranks GQOPT_PLAN_CACHE=0
    EXPECT_EQ(db.plan_cache_stats().capacity, 1u);
    ASSERT_TRUE(db.Prepare(kQueries[0], options).ok());
    ASSERT_TRUE(db.Prepare(kQueries[1], options).ok());
    PlanCacheStats stats = db.plan_cache_stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.evictions, 1u);
  }
  {
    ScopedEnv cap("GQOPT_PLAN_CACHE_CAP", "0");  // 0 = unbounded
    Database db(YagoSchema(), GenerateYago({.persons = 60, .seed = 7}));
    EXPECT_EQ(db.plan_cache_stats().capacity, 0u);
  }
  {
    ScopedEnv cap("GQOPT_PLAN_CACHE_CAP", "not-a-number");
    Database db(YagoSchema(), GenerateYago({.persons = 60, .seed = 7}));
    EXPECT_EQ(db.plan_cache_stats().capacity, kDefaultPlanCacheCapacity);
  }
}

TEST(PlanCacheLruTest, ShrinkingCapacityEvictsImmediately) {
  FaultGuard faults;
  Database db(YagoSchema(), GenerateYago({.persons = 60, .seed = 7}));
  db.set_plan_cache_enabled(true);  // outranks GQOPT_PLAN_CACHE=0
  ExecOptions options;
  for (size_t q = 0; q < kNumQueries; ++q) {
    ASSERT_TRUE(db.Prepare(kQueries[q], options).ok());
  }
  EXPECT_EQ(db.plan_cache_stats().entries, kNumQueries);
  db.set_plan_cache_capacity(1);
  PlanCacheStats stats = db.plan_cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, kNumQueries - 1);
}

}  // namespace
}  // namespace api
}  // namespace gqopt

#include <gtest/gtest.h>

#include "algebra/path_parser.h"
#include "core/simplifier.h"
#include "eval/path_eval.h"
#include "query/query_parser.h"
#include "test_fixtures.h"

namespace gqopt {
namespace {

PathExprPtr Parse(const std::string& text) {
  auto result = ParsePathExpr(text);
  EXPECT_TRUE(result.ok()) << text << ": " << result.status().ToString();
  return result.ok() ? *result : nullptr;
}

void ExpectSimplifiesTo(const std::string& input,
                        const std::string& expected) {
  PathExprPtr simplified = SimplifyPath(Parse(input));
  EXPECT_TRUE(PathExpr::Equals(simplified, Parse(expected)))
      << input << " simplified to " << simplified->ToString()
      << ", expected " << expected;
}

TEST(SimplifierTest, R1RemovesNestedClosure) {
  ExpectSimplifiesTo("(a+)+", "a+");
  ExpectSimplifiesTo("((a+)+)+", "a+");
  ExpectSimplifiesTo("((a/b)+)+", "(a/b)+");
}

TEST(SimplifierTest, R2RemovesClosureInRightBranch) {
  ExpectSimplifiesTo("a+[b+]", "a+[b]");
  // Generalized form: the outer closure is not required.
  ExpectSimplifiesTo("a[b+]", "a[b]");
}

TEST(SimplifierTest, R3TurnsConcatIntoNestedBranch) {
  ExpectSimplifiesTo("a[b/c]", "a[b[c]]");
  ExpectSimplifiesTo("a[b/c/d]", "a[b[c[d]]]");
}

TEST(SimplifierTest, R4RemovesClosureInLeftBranch) {
  ExpectSimplifiesTo("[b+]a+", "[b]a+");
  ExpectSimplifiesTo("[b+]a", "[b]a");
}

TEST(SimplifierTest, R5TurnsConcatIntoBranchInLeftBranch) {
  ExpectSimplifiesTo("[b/c]a", "[b[c]]a");
}

TEST(SimplifierTest, Fig7Example) {
  // phi_red = (((owns[isMarriedTo+/livesIn/dealsWith+])/(isLocatedIn+)+)+)+
  // The paper prints phi_opt with `isMarriedTo` (no closure), but dropping
  // the + of a branch's *spine* is not semantics-preserving in general (a
  // node several marriage hops away may be the only one passing the inner
  // test), so we keep it; the trailing dealsWith+ inside the branch is the
  // whole branch content and its closure is soundly dropped (R2).
  PathExprPtr red = Parse(
      "(((owns[isMarriedTo+/livesIn/dealsWith+])/(isLocatedIn+)+)+)+");
  PathExprPtr opt =
      Parse("(owns[isMarriedTo+[livesIn[dealsWith]]]/isLocatedIn+)+");
  EXPECT_TRUE(PathExpr::Equals(SimplifyPath(red), opt))
      << SimplifyPath(red)->ToString();
}

TEST(SimplifierTest, FixpointTerminatesOnNestedRedexes) {
  // Rules create new redexes that must also fire.
  ExpectSimplifiesTo("a[(b/c)+]", "a[b[c]]");
  ExpectSimplifiesTo("x[((a+)+)/b]", "x[a+[b]]");
}

TEST(SimplifierTest, LeavesIrreducibleExpressionsAlone) {
  for (const char* text : {"a", "-a", "a/b", "a | b", "a & b", "a+", "a[b]",
                           "[a]b", "a{1,3}"}) {
    PathExprPtr e = Parse(text);
    EXPECT_EQ(SimplifyPath(e), e) << text;  // pointer-identical: no change
  }
}

TEST(SimplifierTest, DoesNotRewriteAnnotatedConcatInBranch) {
  // R3/R5 must not fire on annotated concatenations (they would lose the
  // junction constraint).
  PathExprPtr e = Parse("a[b/{CITY}c]");
  EXPECT_EQ(SimplifyPath(e), e);
}

TEST(SimplifierTest, PreservesSemanticsOnFig2) {
  // Every (input, simplified) pair evaluates identically on the paper's
  // example database.
  PropertyGraph graph = testing::Fig2Graph();
  for (const char* text :
       {"(isLocatedIn+)+", "owns[isLocatedIn+]", "livesIn[isLocatedIn/isLocatedIn]",
        "[owns]livesIn", "[owns/isLocatedIn]livesIn",
        "(((owns[isMarriedTo+/livesIn/dealsWith+])/(isLocatedIn+)+)+)+",
        "isMarriedTo[livesIn+]"}) {
    PathExprPtr original = Parse(text);
    PathExprPtr simplified = SimplifyPath(original);
    auto lhs = EvalPath(graph, original);
    auto rhs = EvalPath(graph, simplified);
    ASSERT_TRUE(lhs.ok() && rhs.ok()) << text;
    EXPECT_EQ(lhs->pairs(), rhs->pairs()) << text;
  }
}

TEST(SimplifierTest, SimplifyQueryTouchesAllRelations) {
  auto query = ParseUcqt(
      "x, y <- (x, (a+)+, y), (x, b[c/d], z) ++ (x, (e+)+, y)");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  Ucqt simplified = SimplifyQuery(*query);
  EXPECT_TRUE(PathExpr::Equals(simplified.disjuncts[0].relations[0].path,
                               Parse("a+")));
  EXPECT_TRUE(PathExpr::Equals(simplified.disjuncts[0].relations[1].path,
                               Parse("b[c[d]]")));
  EXPECT_TRUE(PathExpr::Equals(simplified.disjuncts[1].relations[0].path,
                               Parse("e+")));
}

}  // namespace
}  // namespace gqopt

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/strings.h"

namespace gqopt {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(9), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(9), 9);
}

TEST(ResultTest, MacroPropagatesErrors) {
  auto inner = []() -> Result<int> { return Status::OutOfRange("nope"); };
  auto outer = [&]() -> Result<int> {
    GQOPT_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  Result<int> r = outer();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("knows"));
  EXPECT_TRUE(IsIdentifier("_x1"));
  EXPECT_FALSE(IsIdentifier("1abc"));
  EXPECT_FALSE(IsIdentifier("has-tag"));
  EXPECT_FALSE(IsIdentifier(""));
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, SkewedFavorsSmallIndices) {
  Rng rng(11);
  size_t small = 0;
  const size_t n = 1000;
  for (size_t i = 0; i < n; ++i) {
    if (rng.Skewed(100) < 10) ++small;
  }
  EXPECT_GT(small, n / 4);  // far above the uniform 10%
}

TEST(StatsTest, EmptySummary) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0);
}

TEST(StatsTest, SingleValue) {
  Summary s = Summarize({4.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 4.0);
  EXPECT_EQ(s.median, 4.0);
  EXPECT_EQ(s.max, 4.0);
}

TEST(StatsTest, QuartilesOfKnownSample) {
  // numpy.percentile(..., [25, 50, 75]) of 1..5 = 2, 3, 4.
  Summary s = Summarize({5, 4, 3, 2, 1});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(StatsTest, InterpolatedQuartiles) {
  Summary s = Summarize({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.q1, 1.75);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.q3, 3.25);
}

}  // namespace
}  // namespace gqopt

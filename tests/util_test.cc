#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/offsets.h"
#include "util/radix.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/strings.h"

namespace gqopt {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(9), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(9), 9);
}

TEST(ResultTest, MacroPropagatesErrors) {
  auto inner = []() -> Result<int> { return Status::OutOfRange("nope"); };
  auto outer = [&]() -> Result<int> {
    GQOPT_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  Result<int> r = outer();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("knows"));
  EXPECT_TRUE(IsIdentifier("_x1"));
  EXPECT_FALSE(IsIdentifier("1abc"));
  EXPECT_FALSE(IsIdentifier("has-tag"));
  EXPECT_FALSE(IsIdentifier(""));
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, SkewedFavorsSmallIndices) {
  Rng rng(11);
  size_t small = 0;
  const size_t n = 1000;
  for (size_t i = 0; i < n; ++i) {
    if (rng.Skewed(100) < 10) ++small;
  }
  EXPECT_GT(small, n / 4);  // far above the uniform 10%
}

TEST(StatsTest, EmptySummary) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0);
}

TEST(StatsTest, SingleValue) {
  Summary s = Summarize({4.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 4.0);
  EXPECT_EQ(s.median, 4.0);
  EXPECT_EQ(s.max, 4.0);
}

TEST(StatsTest, QuartilesOfKnownSample) {
  // numpy.percentile(..., [25, 50, 75]) of 1..5 = 2, 3, 4.
  Summary s = Summarize({5, 4, 3, 2, 1});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(StatsTest, InterpolatedQuartiles) {
  Summary s = Summarize({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.q1, 1.75);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.q3, 3.25);
}

TEST(OffsetsTest, FillSortedOffsetsIsLowerBound) {
  std::vector<uint32_t> keys{0, 0, 2, 2, 2, 5, 7, 7};
  std::vector<uint32_t> offsets;
  FillSortedOffsets(
      keys.size(), 8, [&keys](uint32_t i) { return keys[i]; }, &offsets);
  ASSERT_EQ(offsets.size(), 9u);
  for (uint32_t v = 0; v <= 8; ++v) {
    size_t expected =
        std::lower_bound(keys.begin(), keys.end(), v) - keys.begin();
    EXPECT_EQ(offsets[v], expected) << "value " << v;
  }
}

TEST(OffsetsTest, FillSortedOffsetsEmpty) {
  std::vector<uint32_t> offsets;
  FillSortedOffsets(
      0, 4, [](uint32_t) { return 0u; }, &offsets);
  EXPECT_EQ(offsets, (std::vector<uint32_t>{0, 0, 0, 0, 0}));
}

TEST(OffsetsTest, ExclusivePrefixSum) {
  std::vector<uint32_t> counts{3, 0, 2, 5};
  EXPECT_EQ(ExclusivePrefixSum(&counts), 10u);
  EXPECT_EQ(counts, (std::vector<uint32_t>{0, 3, 3, 5}));
}

TEST(RadixTest, BitsScaleWithRows) {
  EXPECT_EQ(RadixBitsFor(100), 0);
  EXPECT_GE(RadixBitsFor(size_t{1} << 20), 5);
  EXPECT_LE(RadixBitsFor(size_t{1} << 40), 10);  // capped
}

TEST(RadixTest, PartitionsAreContiguousAndComplete) {
  Rng rng(5);
  size_t n = 50000;
  // Tuples of (key, original row id): the id rides along so the scatter
  // can be checked for exactly-once coverage.
  std::vector<uint64_t> keys(n);
  std::vector<uint32_t> data(n * 2);
  for (size_t r = 0; r < n; ++r) {
    keys[r] = rng.Uniform(1 << 12);  // plenty of dups
    data[r * 2] = static_cast<uint32_t>(keys[r]);
    data[r * 2 + 1] = static_cast<uint32_t>(r);
  }
  int bits = RadixBitsFor(n);
  ASSERT_GE(bits, 1);
  RadixPartitions parts;
  ASSERT_TRUE(
      BuildRadixPartitions(keys, bits, Deadline(), &parts, data.data(), 2));
  ASSERT_EQ(parts.offsets.size(), parts.partitions() + 1);
  EXPECT_EQ(parts.offsets.front(), 0u);
  EXPECT_EQ(parts.offsets.back(), n);
  // Every input row appears exactly once, in the partition its key
  // hashes to, with its key carried along.
  std::vector<bool> seen(n, false);
  for (size_t p = 0; p < parts.partitions(); ++p) {
    for (uint32_t i = parts.offsets[p]; i < parts.offsets[p + 1]; ++i) {
      const uint32_t* row = parts.Row(i);
      ASSERT_LT(row[1], n);
      EXPECT_EQ(RadixPartitionOf(keys[row[1]], bits), p);
      EXPECT_EQ(row[0], static_cast<uint32_t>(keys[row[1]]));
      EXPECT_FALSE(seen[row[1]]);
      seen[row[1]] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(RadixTest, TupleModeScattersRowsWithRecomputableKeys) {
  Rng rng(6);
  size_t n = 20000;
  std::vector<uint32_t> data(n * 2);
  std::vector<uint64_t> keys(n);
  for (size_t r = 0; r < n; ++r) {
    data[r * 2] = static_cast<uint32_t>(rng.Uniform(1 << 9));
    data[r * 2 + 1] = static_cast<uint32_t>(rng.Uniform(1 << 9));
    keys[r] = (static_cast<uint64_t>(data[r * 2]) << 32) | data[r * 2 + 1];
  }
  int bits = 3;
  RadixPartitions parts;
  ASSERT_TRUE(
      BuildRadixPartitions(keys, bits, Deadline(), &parts, data.data(), 2));
  EXPECT_EQ(parts.row_width, 2u);
  EXPECT_EQ(parts.data.size(), n * 2);
  EXPECT_EQ(parts.offsets.back(), n);
  // Re-packing a scattered tuple's key must land it in its partition,
  // and the multiset of scattered tuples must equal the input's.
  std::vector<uint64_t> scattered;
  for (size_t p = 0; p < parts.partitions(); ++p) {
    for (uint32_t i = parts.offsets[p]; i < parts.offsets[p + 1]; ++i) {
      const uint32_t* row = parts.Row(i);
      uint64_t key = (static_cast<uint64_t>(row[0]) << 32) | row[1];
      EXPECT_EQ(RadixPartitionOf(key, bits), p);
      scattered.push_back(key);
    }
  }
  std::vector<uint64_t> expected = keys;
  std::sort(expected.begin(), expected.end());
  std::sort(scattered.begin(), scattered.end());
  EXPECT_EQ(scattered, expected);
}

TEST(RadixTest, ExpiredDeadlineAborts) {
  std::vector<uint64_t> keys(size_t{1} << 17, 42);
  std::vector<uint32_t> data(keys.size(), 7);
  Deadline deadline = Deadline::AfterMillis(1);
  while (!deadline.Expired()) {
  }
  RadixPartitions parts;
  EXPECT_FALSE(
      BuildRadixPartitions(keys, 2, deadline, &parts, data.data(), 1));
}

}  // namespace
}  // namespace gqopt

// Executor-focused tests, in particular the structural (rename-invariant)
// memoization: plans that are equal modulo a consistent renaming of their
// columns must share one evaluation, while plans differing in labels,
// shared-column patterns or operator parameters must not.

#include <gtest/gtest.h>

#include "ra/catalog.h"
#include "ra/executor.h"
#include "test_fixtures.h"

namespace gqopt {
namespace {

using testing::kN1;
using testing::kN2;
using testing::kN4;
using testing::kN5;
using testing::kN6;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : graph_(testing::Fig2Graph()), catalog_(graph_) {}

  Table Run(const RaExprPtr& plan) {
    Executor executor(catalog_);
    auto result = executor.Run(plan);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : Table{};
  }

  PropertyGraph graph_;
  Catalog catalog_;
};

TEST_F(ExecutorTest, MemoRelabelsIsomorphicSubplans) {
  // The same logical subplan appears twice with different column names;
  // the result must carry each occurrence's own names.
  RaExprPtr a = RaExpr::EdgeScan("livesIn", "p", "c");
  RaExprPtr b = RaExpr::EdgeScan("livesIn", "q", "d");
  // Disjoint columns: cross join, 2 x 2 rows, columns p,c,q,d.
  Table t = Run(RaExpr::Join(a, b));
  EXPECT_EQ(t.columns(), (std::vector<std::string>{"p", "c", "q", "d"}));
  EXPECT_EQ(t.rows(), 4u);
}

TEST_F(ExecutorTest, MemoDistinguishesLabels) {
  // Same shape, different edge labels: must NOT be merged.
  RaExprPtr a = RaExpr::EdgeScan("livesIn", "x", "y");
  RaExprPtr b = RaExpr::EdgeScan("owns", "x", "y");
  Table t = Run(RaExpr::Union(a, b));
  EXPECT_EQ(t.rows(), 3u);  // 2 livesIn + 1 owns
}

TEST_F(ExecutorTest, MemoDistinguishesSharedColumnPatterns) {
  // Join on one shared column vs join on zero shared columns have
  // different canonical keys even though the leaves are isomorphic.
  RaExprPtr shared = RaExpr::Join(RaExpr::EdgeScan("livesIn", "a", "b"),
                                  RaExpr::EdgeScan("isLocatedIn", "b", "c"));
  RaExprPtr disjoint = RaExpr::Join(
      RaExpr::EdgeScan("livesIn", "a", "b"),
      RaExpr::EdgeScan("isLocatedIn", "d", "c"));
  EXPECT_EQ(Run(shared).rows(), 2u);    // persons -> city -> region
  EXPECT_EQ(Run(disjoint).rows(), 8u);  // 2 x 4 cross product
  // And within a single plan evaluation:
  Table both = Run(RaExpr::Join(RaExpr::Distinct(shared),
                                RaExpr::Distinct(disjoint)));
  EXPECT_GT(both.rows(), 0u);
}

TEST_F(ExecutorTest, MemoDistinguishesSeedSides) {
  RaExprPtr body = RaExpr::EdgeScan("isLocatedIn", "s", "t");
  RaExprPtr seed_nodes = RaExpr::NodeScan({"CITY"}, "s");
  RaExprPtr seed_nodes_t = RaExpr::NodeScan({"CITY"}, "t");
  RaExprPtr source_seeded = RaExpr::TransitiveClosure(
      body, "s", "t", seed_nodes, SeedSide::kSource);
  RaExprPtr target_seeded = RaExpr::TransitiveClosure(
      body, "s", "t", seed_nodes_t, SeedSide::kTarget);
  // From cities: n6->n5,n7 and n4->n5,n7 => 4 pairs. Ending at cities:
  // only n1 -> n6 => 1 pair.
  EXPECT_EQ(Run(source_seeded).rows(), 4u);
  EXPECT_EQ(Run(target_seeded).rows(), 1u);
}

TEST_F(ExecutorTest, MemoDistinguishesSelectEqColumns) {
  RaExprPtr base = RaExpr::Join(
      RaExpr::EdgeScan("isMarriedTo", "x", "y"),
      RaExpr::EdgeScan("livesIn", "y", "z"));
  // x = y never holds (nobody married to themselves); y = y always holds.
  EXPECT_EQ(Run(RaExpr::SelectEq(base, "x", "y")).rows(), 0u);
  EXPECT_EQ(Run(RaExpr::SelectEq(base, "y", "y")).rows(), 2u);
}

TEST_F(ExecutorTest, SemiJoinWithoutSharedColumnsIsExistential) {
  RaExprPtr left = RaExpr::EdgeScan("livesIn", "a", "b");
  RaExprPtr nonempty = RaExpr::EdgeScan("owns", "c", "d");
  RaExprPtr empty = RaExpr::EdgeScan("dealsWith", "c", "d");
  EXPECT_EQ(Run(RaExpr::SemiJoin(left, nonempty)).rows(), 2u);
  EXPECT_EQ(Run(RaExpr::SemiJoin(left, empty)).rows(), 0u);
}

TEST_F(ExecutorTest, NodeScanOfUnknownLabelIsEmpty) {
  Table t = Run(RaExpr::NodeScan({"NOPE"}, "n"));
  EXPECT_EQ(t.rows(), 0u);
}

TEST_F(ExecutorTest, EmptyNodeScanListIsEmpty) {
  Table t = Run(RaExpr::NodeScan({}, "n"));
  EXPECT_EQ(t.rows(), 0u);
}

TEST_F(ExecutorTest, JoinThreeSharedColumnsVerifiesAll) {
  // Build two 3-column tables sharing all columns; the packed key only
  // covers two columns, so the executor must verify the third.
  RaExprPtr left = RaExpr::Join(RaExpr::EdgeScan("isMarriedTo", "a", "b"),
                                RaExpr::EdgeScan("livesIn", "b", "c"));
  RaExprPtr right = RaExpr::Join(RaExpr::EdgeScan("isMarriedTo", "a", "b"),
                                 RaExpr::EdgeScan("livesIn", "b", "c"));
  Table t = Run(RaExpr::Join(left, right));
  // Self-join on all three columns: same rows as the input (2).
  EXPECT_EQ(t.rows(), 2u);
}

TEST_F(ExecutorTest, RenamedToCopiesData) {
  Table t({"a", "b"});
  t.AddRow(std::vector<NodeId>{1, 2});
  Table renamed = t.RenamedTo({"x", "y"});
  EXPECT_EQ(renamed.columns(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(renamed.data(), t.data());
}

TEST_F(ExecutorTest, ClosureOnEmptyBody) {
  RaExprPtr plan = RaExpr::TransitiveClosure(
      RaExpr::EdgeScan("dealsWith", "s", "t"), "s", "t");
  EXPECT_EQ(Run(plan).rows(), 0u);
}

TEST_F(ExecutorTest, SeededClosureWithEmptySeed) {
  RaExprPtr plan = RaExpr::TransitiveClosure(
      RaExpr::EdgeScan("isLocatedIn", "s", "t"), "s", "t",
      RaExpr::NodeScan({"PERSON"}, "s"),  // persons never source isLocatedIn
      SeedSide::kSource);
  EXPECT_EQ(Run(plan).rows(), 0u);
}

TEST_F(ExecutorTest, UnionRequiresOnlySameColumnSet) {
  RaExprPtr left = RaExpr::EdgeScan("livesIn", "a", "b");
  RaExprPtr right = RaExpr::Project(RaExpr::EdgeScan("owns", "b", "a"),
                                    {{"b", "b"}, {"a", "a"}});
  Table t = Run(RaExpr::Union(left, right));
  EXPECT_EQ(t.columns(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(t.rows(), 3u);
  // The owns row must have been aligned: owns scan binds b = source (John)
  // and a = target (the property), so the (a, b) row is (n1, n2).
  bool found = false;
  for (size_t r = 0; r < t.rows(); ++r) {
    if (t.At(r, 0) == kN1 && t.At(r, 1) == kN2) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ExecutorTest, OrderingPropagatesThroughOperators) {
  // Scans are sorted by construction.
  EXPECT_EQ(Run(RaExpr::EdgeScan("livesIn", "x", "y")).sort_prefix(), 2u);
  EXPECT_EQ(Run(RaExpr::NodeScan({"PERSON"}, "n")).sort_prefix(), 1u);
  // Dropping a trailing column keeps the leading ordering (the bool
  // model lost it on every projection).
  Table proj = Run(RaExpr::Project(RaExpr::EdgeScan("livesIn", "x", "y"),
                                   {{"x", "x"}}));
  EXPECT_EQ(proj.sort_prefix(), 1u);
  // Reordering columns drops it.
  Table swapped = Run(RaExpr::Project(RaExpr::EdgeScan("livesIn", "x", "y"),
                                      {{"y", "y"}, {"x", "x"}}));
  EXPECT_EQ(swapped.sort_prefix(), 0u);
  // Filters preserve the full prefix.
  Table sel = Run(RaExpr::SelectEq(RaExpr::EdgeScan("livesIn", "x", "y"),
                                   "x", "x"));
  EXPECT_EQ(sel.sort_prefix(), 2u);
  // Semi-joins filter the left side, so its ordering survives.
  Table semi = Run(RaExpr::SemiJoin(RaExpr::EdgeScan("livesIn", "x", "y"),
                                    RaExpr::EdgeScan("owns", "x", "z")));
  EXPECT_EQ(semi.sort_prefix(), 2u);
}

TEST_F(ExecutorTest, JoinOutputCarriesProbeSideOrdering) {
  // Merge join (shared column leading and sorted on both sides): the
  // output streams in left-row order, so the left prefix survives.
  Table merged = Run(RaExpr::Join(RaExpr::EdgeScan("livesIn", "x", "y"),
                                  RaExpr::EdgeScan("isMarriedTo", "x", "z")));
  EXPECT_EQ(merged.sort_prefix(), 2u);
  for (size_t r = 1; r < merged.rows(); ++r) {
    EXPECT_LE(merged.At(r - 1, 0), merged.At(r, 0));
  }
  // Offset join probes the left side in order.
  Table offset = Run(RaExpr::Join(RaExpr::EdgeScan("owns", "x", "z"),
                                  RaExpr::EdgeScan("isLocatedIn", "z", "y")));
  EXPECT_EQ(offset.sort_prefix(), 2u);
  // Cross products iterate left rows in the outer loop.
  Table cross = Run(RaExpr::Join(RaExpr::EdgeScan("livesIn", "a", "b"),
                                 RaExpr::EdgeScan("owns", "c", "d")));
  EXPECT_EQ(cross.sort_prefix(), 2u);
}

TEST_F(ExecutorTest, ForcedJoinStrategiesAgreeOnSmallInputs) {
  // Every physical strategy computes the same join; annotations whose
  // preconditions fail at runtime must degrade, not crash.
  RaExprPtr left = RaExpr::EdgeScan("livesIn", "x", "y");
  RaExprPtr right = RaExpr::EdgeScan("isMarriedTo", "x", "z");
  Table reference = Run(RaExpr::Join(left, right));
  for (JoinStrategy s :
       {JoinStrategy::kMergeSorted, JoinStrategy::kOffset,
        JoinStrategy::kRadixHash, JoinStrategy::kFlatHash}) {
    Table t = Run(RaExpr::Join(left, right, s));
    Table a = reference;
    Table b = t;
    a.SortDistinct();
    b.SortDistinct();
    EXPECT_EQ(a.data(), b.data()) << "strategy " << JoinStrategyName(s);
  }
}

}  // namespace
}  // namespace gqopt

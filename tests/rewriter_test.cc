// End-to-end rewriter tests: the paper's Example 13, opportunistic reverts
// (§5.2), unsatisfiability detection, ablations and Tab 6 stats.

#include <gtest/gtest.h>

#include "algebra/path_parser.h"
#include "api/stages.h"  // white-box stage access
#include "datasets/ldbc.h"
#include "datasets/yago.h"
#include "query/query_parser.h"
#include "test_fixtures.h"

namespace gqopt {
namespace {

using testing::Fig1Schema;

Ucqt Parse(const std::string& text) {
  auto result = ParseUcqt(text);
  EXPECT_TRUE(result.ok()) << text << ": " << result.status().ToString();
  return result.ok() ? *result : Ucqt{};
}

RewriteResult Rewrite(const std::string& text, const GraphSchema& schema,
                      const RewriteOptions& options = {}) {
  auto result = RewriteQuery(Parse(text), schema, options);
  EXPECT_TRUE(result.ok()) << text << ": " << result.status().ToString();
  return result.ok() ? *result : RewriteResult{};
}

TEST(RewriterTest, Example13EndToEnd) {
  RewriteResult result = Rewrite(
      "x1, x2 <- (x1, livesIn/isLocatedIn+/dealsWith+, x2)", Fig1Schema());
  EXPECT_FALSE(result.reverted);
  EXPECT_FALSE(result.unsatisfiable);
  ASSERT_EQ(result.query.disjuncts.size(), 1u);
  const Cqt& cqt = result.query.disjuncts[0];
  // Paper Example 13:
  //   {a, b | exists g. (a, lvIn/isL, g) and (g, isL/dw+, b) and
  //    label(g) in {REGION}}
  ASSERT_EQ(cqt.relations.size(), 2u);
  EXPECT_EQ(cqt.relations[0].source_var, "x1");
  EXPECT_EQ(cqt.relations[0].path->ToString(), "livesIn/isLocatedIn");
  EXPECT_EQ(cqt.relations[0].target_var, cqt.relations[1].source_var);
  EXPECT_EQ(cqt.relations[1].path->ToString(), "isLocatedIn/dealsWith+");
  EXPECT_EQ(cqt.relations[1].target_var, "x2");
  ASSERT_EQ(cqt.atoms.size(), 1u);
  EXPECT_EQ(cqt.atoms[0].var, cqt.relations[0].target_var);
  EXPECT_EQ(cqt.atoms[0].labels, (std::vector<std::string>{"REGION"}));
}

TEST(RewriterTest, Example13Stats) {
  RewriteResult result = Rewrite(
      "x1, x2 <- (x1, livesIn/isLocatedIn+/dealsWith+, x2)", Fig1Schema());
  // isLocatedIn+ eliminated (replaced by one path of length 2);
  // dealsWith+ kept.
  ASSERT_EQ(result.stats.closures.size(), 2u);
  size_t eliminated = result.stats.eliminated_closures();
  EXPECT_EQ(eliminated, 1u);
  EXPECT_EQ(result.stats.all_path_lengths(), (std::vector<int>{2}));
}

TEST(RewriterTest, PureClosureExpandsToUnionOfPaths) {
  // isLocatedIn+ alone: 6 merged triples -> 6 disjuncts, no closure left.
  RewriteResult result =
      Rewrite("x1, x2 <- (x1, isLocatedIn+, x2)", Fig1Schema());
  EXPECT_FALSE(result.reverted);
  EXPECT_EQ(result.query.disjuncts.size(), 3u)
      << result.query.ToString();  // lengths 1, 2, 3 after merging
  EXPECT_FALSE(result.query.IsRecursive());
  ASSERT_EQ(result.stats.closures.size(), 1u);
  EXPECT_TRUE(result.stats.closures[0].eliminated);
}

TEST(RewriterTest, CyclicClosureReverts) {
  // dealsWith+ is cyclic and all annotations are schema-implied: the
  // query reverts (paper §5.2).
  RewriteResult result =
      Rewrite("x1, x2 <- (x1, dealsWith+, x2)", Fig1Schema());
  EXPECT_TRUE(result.reverted);
  EXPECT_EQ(result.query.ToString(),
            Parse("x1, x2 <- (x1, dealsWith+, x2)").ToString());
}

TEST(RewriterTest, MarriageChainReverts) {
  // The YAGO workload's Y7 shape: isMarriedTo+/livesIn.
  RewriteResult result =
      Rewrite("x1, x2 <- (x1, isMarriedTo+/livesIn, x2)", Fig1Schema());
  EXPECT_TRUE(result.reverted);
}

TEST(RewriterTest, UnsatisfiableQueryDetected) {
  // livesIn/owns has no compatible junction under Fig 1.
  RewriteResult result =
      Rewrite("x1, x2 <- (x1, livesIn/owns, x2)", Fig1Schema());
  EXPECT_TRUE(result.unsatisfiable);
  EXPECT_TRUE(result.query.IsEmpty());
}

TEST(RewriterTest, UnknownEdgeLabelIsError) {
  auto result =
      RewriteQuery(Parse("x1, x2 <- (x1, flysTo, x2)"), Fig1Schema());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(RewriterTest, UnionWithoutSchemaGainReverts) {
  // Splitting owns | livesIn into two disjuncts adds no schema information
  // (no annotations, no closure removed), so the rewriter keeps the input
  // untouched — mirroring the paper's IC7/IC9 reverts.
  RewriteResult result =
      Rewrite("x1, x2 <- (x1, owns | livesIn, x2)", Fig1Schema());
  EXPECT_TRUE(result.reverted);
  EXPECT_EQ(result.query.disjuncts.size(), 1u);
}

TEST(RewriterTest, UnionWithConstraintSplits) {
  // Here one union branch ends at PROPERTY and the other continues to a
  // region: endpoints differ, the target atoms survive pruning, and the
  // query genuinely splits.
  RewriteResult result = Rewrite(
      "x1, x2 <- (x1, owns | livesIn/isLocatedIn, x2)", Fig1Schema());
  EXPECT_FALSE(result.reverted);
  EXPECT_EQ(result.query.disjuncts.size(), 2u);
}

TEST(RewriterTest, MultiRelationCqtKeepsSharedVariables) {
  // The paper's C1 (Fig 4): both relations constrain Y.
  RewriteResult result = Rewrite(
      "y <- (y, livesIn/isLocatedIn+, m), (y, owns, z)", Fig1Schema());
  EXPECT_FALSE(result.reverted);
  for (const Cqt& cqt : result.query.disjuncts) {
    bool saw_owns = false;
    for (const Relation& rel : cqt.relations) {
      if (rel.path->ToString() == "owns") {
        saw_owns = true;
        EXPECT_EQ(rel.source_var, "y");
      }
    }
    EXPECT_TRUE(saw_owns);
  }
}

TEST(RewriterTest, PreservesExistingAtoms) {
  RewriteResult result = Rewrite(
      "x1, x2 <- (x1, owns/isLocatedIn, x2), label(x1) = PERSON",
      Fig1Schema());
  bool found = false;
  for (const Cqt& cqt : result.query.disjuncts.empty()
                            ? Parse("x <- (x, owns, y)").disjuncts
                            : result.query.disjuncts) {
    for (const LabelAtom& atom : cqt.atoms) {
      if (atom.var == "x1" &&
          atom.labels == std::vector<std::string>{"PERSON"}) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(RewriterTest, AblationNoTcElimination) {
  RewriteOptions options;
  options.enable_tc_elimination = false;
  RewriteResult result = Rewrite(
      "x1, x2 <- (x1, livesIn/isLocatedIn+/dealsWith+, x2)", Fig1Schema(),
      options);
  // The closure survives; only annotations may be added.
  EXPECT_TRUE(result.query.IsRecursive());
  for (const ClosureStats& c : result.stats.closures) {
    EXPECT_FALSE(c.eliminated);
  }
}

TEST(RewriterTest, AblationNoAnnotations) {
  RewriteOptions options;
  options.enable_annotations = false;
  RewriteResult result = Rewrite(
      "x1, x2 <- (x1, livesIn/isLocatedIn+/dealsWith+, x2)", Fig1Schema(),
      options);
  EXPECT_FALSE(result.reverted);
  for (const Cqt& cqt : result.query.disjuncts) {
    EXPECT_TRUE(cqt.atoms.empty());
    for (const Relation& rel : cqt.relations) {
      EXPECT_FALSE(rel.path->HasAnnotations());
    }
  }
  // TC elimination still happened for isLocatedIn+ (dealsWith+ is cyclic
  // and must stay).
  bool isl_eliminated = false;
  for (const ClosureStats& c : result.stats.closures) {
    if (c.closure == "isLocatedIn+") isl_eliminated = c.eliminated;
  }
  EXPECT_TRUE(isl_eliminated);
}

TEST(RewriterTest, RepeatDesugarsBeforeInference) {
  RewriteResult result = Rewrite(
      "x1, x2 <- (x1, isMarriedTo{1,2}/owns/isLocatedIn, x2)",
      Fig1Schema());
  ASSERT_FALSE(result.reverted);  // the CITY target atom survives
  // No repeat nodes survive anywhere.
  for (const Cqt& cqt : result.query.disjuncts) {
    for (const Relation& rel : cqt.relations) {
      std::function<bool(const PathExprPtr&)> has_repeat =
          [&](const PathExprPtr& e) -> bool {
        if (!e) return false;
        if (e->op() == PathOp::kRepeat) return true;
        return has_repeat(e->left()) || has_repeat(e->right());
      };
      EXPECT_FALSE(has_repeat(rel.path));
    }
  }
}

TEST(RewriterTest, LdbcRevertSet) {
  // The paper reports IC2, IC6, IC7, IC9, IC13, BI11, BI9, BI20, LSQB6
  // (plus YAGO-style Y7) reverting on LDBC. Verify the structurally
  // obvious ones revert under our (slightly stronger) pruning.
  GraphSchema schema = LdbcSchema();
  for (const char* text : {
           "x1, x2 <- (x1, knows/-hasCreator, x2)",              // IC2
           "x1, x2 <- (x1, knows+, x2)",                         // IC13
           "x1, x2 <- (x1, replyOf+/hasCreator, x2)",            // BI9
           "x1, x2 <- (x1, knows/knows/hasInterest, x2)",        // LSQB6
           "x1, x2 <- (x1, (knows & (studyAt/-studyAt))+, x2)",  // BI20
       }) {
    RewriteResult result = Rewrite(text, schema);
    EXPECT_TRUE(result.reverted) << text << " -> "
                                 << result.query.ToString();
  }
}

TEST(RewriterTest, LdbcIsLocatedInEliminated) {
  // Y2-style query: isLocatedIn+ collapses to a single step on LDBC
  // (Place has no outgoing isLocatedIn). One of the paper's 5 removable
  // LDBC closures.
  GraphSchema schema = LdbcSchema();
  RewriteResult result = Rewrite(
      "x1, x2 <- (x1, likes/hasCreator/knows+/isLocatedIn+, x2)", schema);
  EXPECT_FALSE(result.reverted);
  bool isl_eliminated = false;
  for (const ClosureStats& c : result.stats.closures) {
    if (c.closure == "isLocatedIn+") isl_eliminated = c.eliminated;
  }
  EXPECT_TRUE(isl_eliminated);
}

TEST(RewriterTest, YagoQuery6PathLengths) {
  // owns/isLocatedIn+ on the full YAGO schema: replacement paths of
  // lengths 1, 2, 3 (Tab 6's min 1 / avg 2 / max 3 rows).
  RewriteResult result =
      Rewrite("x1, x2 <- (x1, owns/isLocatedIn+, x2)", YagoSchema());
  EXPECT_FALSE(result.reverted);
  EXPECT_EQ(result.stats.all_path_lengths(), (std::vector<int>{1, 2, 3}));
}

TEST(RewriterTest, OrderLimitOffsetSuffixRidesThrough) {
  // The rewrite touches only disjunct bodies: the ordering window —
  // including the offset — must survive both an applied rewrite and an
  // opportunistic revert verbatim.
  RewriteResult applied = Rewrite(
      "x1, x2 <- (x1, owns/isLocatedIn+, x2) order by x2, x1 desc "
      "limit 6 offset 3",
      YagoSchema());
  EXPECT_FALSE(applied.reverted);
  ASSERT_EQ(applied.query.order_by.size(), 2u);
  EXPECT_EQ(applied.query.order_by[0].var, "x2");
  EXPECT_TRUE(applied.query.order_by[1].descending);
  EXPECT_EQ(applied.query.limit, 6);
  EXPECT_EQ(applied.query.offset, 3);

  RewriteResult reverted = Rewrite(
      "x1, x2 <- (x1, knows+, x2) order by x1 limit 4 offset 2",
      LdbcSchema());
  EXPECT_TRUE(reverted.reverted);
  EXPECT_EQ(reverted.query.limit, 4);
  EXPECT_EQ(reverted.query.offset, 2);
}

TEST(RewriterTest, RewriteIsDeterministic) {
  RewriteResult a = Rewrite(
      "x1, x2 <- (x1, livesIn/isLocatedIn+/dealsWith+, x2)", Fig1Schema());
  RewriteResult b = Rewrite(
      "x1, x2 <- (x1, livesIn/isLocatedIn+/dealsWith+, x2)", Fig1Schema());
  EXPECT_EQ(a.query.ToString(), b.query.ToString());
}

}  // namespace
}  // namespace gqopt

// Type inference tests, including exact reproductions of the paper's
// Example 10 / Tab 1 on the Fig 1 schema.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "algebra/path_parser.h"
#include "core/label_graph.h"
#include "core/type_inference.h"
#include "test_fixtures.h"

namespace gqopt {
namespace {

using testing::Fig1Schema;

TripleSet Infer(const std::string& text, const GraphSchema& schema,
                const InferenceOptions& options = {}) {
  auto expr = ParsePathExpr(text);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  auto result = InferTriples(*expr, schema, options);
  EXPECT_TRUE(result.ok()) << text << ": " << result.status().ToString();
  return result.ok() ? result->triples : TripleSet{};
}

std::set<std::string> Render(const TripleSet& triples) {
  std::set<std::string> out;
  for (const SchemaTriple& t : triples) out.insert(t.ToString());
  return out;
}

TEST(InferenceTest, TBasicSingleEdge) {
  TripleSet triples = Infer("owns", Fig1Schema());
  EXPECT_EQ(Render(triples),
            (std::set<std::string>{"(PERSON, owns, PROPERTY)"}));
}

TEST(InferenceTest, TBasicMultiTripleEdge) {
  TripleSet triples = Infer("isLocatedIn", Fig1Schema());
  EXPECT_EQ(Render(triples),
            (std::set<std::string>{"(PROPERTY, isLocatedIn, CITY)",
                                   "(CITY, isLocatedIn, REGION)",
                                   "(REGION, isLocatedIn, COUNTRY)"}));
}

TEST(InferenceTest, TMinusSwapsEndpoints) {
  TripleSet triples = Infer("-livesIn", Fig1Schema());
  EXPECT_EQ(Render(triples),
            (std::set<std::string>{"(CITY, -livesIn, PERSON)"}));
}

TEST(InferenceTest, UnknownEdgeLabelIsAnError) {
  auto expr = ParsePathExpr("flysTo");
  ASSERT_TRUE(expr.ok());
  auto result = InferTriples(*expr, Fig1Schema());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(InferenceTest, TConcatJoinsOnJunction) {
  // Paper §3.1.2: owns/isLocatedIn has exactly one compatible triple.
  TripleSet triples = Infer("owns/isLocatedIn", Fig1Schema());
  EXPECT_EQ(Render(triples),
            (std::set<std::string>{
                "(PERSON, owns/{PROPERTY}isLocatedIn, CITY)"}));
}

TEST(InferenceTest, TConcatIncompatibleIsEmpty) {
  // livesIn ends at CITY; owns starts at PERSON: no junction.
  EXPECT_TRUE(Infer("livesIn/owns", Fig1Schema()).empty());
}

TEST(InferenceTest, TUnionKeepsOperandTriples) {
  TripleSet triples = Infer("owns | livesIn", Fig1Schema());
  EXPECT_EQ(Render(triples),
            (std::set<std::string>{"(PERSON, owns, PROPERTY)",
                                   "(PERSON, livesIn, CITY)"}));
}

TEST(InferenceTest, TConjRequiresMatchingEndpoints) {
  EXPECT_EQ(Render(Infer("isMarriedTo & isMarriedTo", Fig1Schema())),
            (std::set<std::string>{
                "(PERSON, isMarriedTo & isMarriedTo, PERSON)"}));
  EXPECT_TRUE(Infer("owns & livesIn", Fig1Schema()).empty());
}

TEST(InferenceTest, TBranchRight) {
  TripleSet triples = Infer("owns[isLocatedIn]", Fig1Schema());
  EXPECT_EQ(Render(triples),
            (std::set<std::string>{
                "(PERSON, owns[isLocatedIn], PROPERTY)"}));
  // A branch that cannot continue eliminates the triple.
  EXPECT_TRUE(Infer("owns[owns]", Fig1Schema()).empty());
}

TEST(InferenceTest, TBranchLeft) {
  TripleSet triples = Infer("[owns]livesIn", Fig1Schema());
  EXPECT_EQ(Render(triples),
            (std::set<std::string>{"(PERSON, [owns]livesIn, CITY)"}));
  EXPECT_TRUE(Infer("[isLocatedIn]owns", Fig1Schema()).empty());
}

// ---- Example 10 / Tab 1 ----------------------------------------------------

TEST(InferenceTest, Tab1ClosureWithCycleKeepsPlus) {
  // TS(dealsWith+) = {(COUNTRY, dealsWith+, COUNTRY)}.
  TripleSet triples = Infer("dealsWith+", Fig1Schema());
  EXPECT_EQ(Render(triples),
            (std::set<std::string>{"(COUNTRY, dealsWith+, COUNTRY)"}));
}

TEST(InferenceTest, Tab1AcyclicClosureEliminated) {
  // TS(isLocatedIn+) contains the 6 triples of Tab 1 (no '+' remains).
  TripleSet triples = Infer("isLocatedIn+", Fig1Schema());
  EXPECT_EQ(Render(triples),
            (std::set<std::string>{
                "(PROPERTY, isLocatedIn, CITY)",
                "(CITY, isLocatedIn, REGION)",
                "(REGION, isLocatedIn, COUNTRY)",
                "(PROPERTY, isLocatedIn/{CITY}isLocatedIn, REGION)",
                "(PROPERTY, "
                "isLocatedIn/{CITY}isLocatedIn/{REGION}isLocatedIn, "
                "COUNTRY)",
                "(CITY, isLocatedIn/{REGION}isLocatedIn, COUNTRY)"}));
  // Replacement provenance: lengths 1,1,1,2,2,3.
  std::multiset<int> lengths;
  for (const SchemaTriple& t : triples) {
    for (const PlusReplacement& r : t.replacements) {
      lengths.insert(r.length);
    }
  }
  EXPECT_EQ(lengths, (std::multiset<int>{1, 1, 1, 2, 2, 3}));
}

TEST(InferenceTest, Tab1ConcatPrunesTriples) {
  // TS(livesIn/isLocatedIn+) = 2 triples (Tab 1 row 4).
  TripleSet triples = Infer("livesIn/isLocatedIn+", Fig1Schema());
  EXPECT_EQ(Render(triples),
            (std::set<std::string>{
                "(PERSON, livesIn/{CITY}isLocatedIn, REGION)",
                "(PERSON, "
                "livesIn/{CITY}isLocatedIn/{REGION}isLocatedIn, COUNTRY)"}));
}

TEST(InferenceTest, Tab1FullExpressionSingleTriple) {
  // TS(livesIn/isLocatedIn+/dealsWith+) = 1 triple (Tab 1 row 5).
  TripleSet triples =
      Infer("livesIn/isLocatedIn+/dealsWith+", Fig1Schema());
  EXPECT_EQ(
      Render(triples),
      (std::set<std::string>{
          "(PERSON, "
          "livesIn/{CITY}isLocatedIn/{REGION}isLocatedIn/{COUNTRY}dealsWith+"
          ", COUNTRY)"}));
}

TEST(InferenceTest, ClosureMixedCycleAndChain) {
  // Schema: A -e-> A (cycle), A -e-> B. Every path touches the cycle
  // vertex A, so all triples keep the closure.
  GraphSchema schema;
  schema.AddEdge("A", "e", "A");
  schema.AddEdge("A", "e", "B");
  TripleSet triples = Infer("e+", schema);
  EXPECT_EQ(Render(triples), (std::set<std::string>{"(A, e+, A)",
                                                    "(A, e+, B)"}));
}

TEST(InferenceTest, ClosureTwoVertexCycle) {
  GraphSchema schema;
  schema.AddEdge("A", "e", "B");
  schema.AddEdge("B", "e", "A");
  TripleSet triples = Infer("e+", schema);
  EXPECT_EQ(Render(triples),
            (std::set<std::string>{"(A, e+, A)", "(A, e+, B)", "(B, e+, A)",
                                   "(B, e+, B)"}));
}

TEST(InferenceTest, TcEliminationDisabledKeepsPlus) {
  InferenceOptions options;
  options.enable_tc_elimination = false;
  TripleSet triples = Infer("isLocatedIn+", Fig1Schema(), options);
  // All six reachable label pairs, each keeping the closure.
  EXPECT_EQ(Render(triples),
            (std::set<std::string>{"(PROPERTY, isLocatedIn+, CITY)",
                                   "(PROPERTY, isLocatedIn+, REGION)",
                                   "(PROPERTY, isLocatedIn+, COUNTRY)",
                                   "(CITY, isLocatedIn+, REGION)",
                                   "(CITY, isLocatedIn+, COUNTRY)",
                                   "(REGION, isLocatedIn+, COUNTRY)"}));
}

TEST(InferenceTest, PlcPathCapFallsBackSoundly) {
  InferenceOptions options;
  options.max_plc_paths = 2;  // force the fallback
  auto expr = ParsePathExpr("isLocatedIn+");
  ASSERT_TRUE(expr.ok());
  auto result = InferTriples(*expr, Fig1Schema(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->overflowed);
  EXPECT_EQ(Render(result->triples),
            (std::set<std::string>{"(PROPERTY, isLocatedIn+, CITY)",
                                   "(PROPERTY, isLocatedIn+, REGION)",
                                   "(PROPERTY, isLocatedIn+, COUNTRY)",
                                   "(CITY, isLocatedIn+, REGION)",
                                   "(CITY, isLocatedIn+, COUNTRY)",
                                   "(REGION, isLocatedIn+, COUNTRY)"}));
}

TEST(InferenceTest, TripleCapIsAnError) {
  InferenceOptions options;
  options.max_triples = 2;
  auto expr = ParsePathExpr("isLocatedIn+");
  ASSERT_TRUE(expr.ok());
  auto result = InferTriples(*expr, Fig1Schema(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(InferenceTest, PossibleSourceAndTargetLabels) {
  GraphSchema schema = Fig1Schema();
  auto parse = [](const char* text) {
    auto e = ParsePathExpr(text);
    EXPECT_TRUE(e.ok());
    return *e;
  };
  auto sorted = [](std::vector<std::string> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(PossibleSourceLabels(parse("isLocatedIn"), schema)),
            (std::vector<std::string>{"CITY", "PROPERTY", "REGION"}));
  EXPECT_EQ(sorted(PossibleTargetLabels(parse("livesIn/isLocatedIn"),
                                        schema)),
            (std::vector<std::string>{"CITY", "COUNTRY", "REGION"}));
  EXPECT_EQ(sorted(PossibleSourceLabels(parse("owns | livesIn"), schema)),
            (std::vector<std::string>{"PERSON"}));
  EXPECT_EQ(sorted(PossibleTargetLabels(parse("owns[isLocatedIn]"), schema)),
            (std::vector<std::string>{"PROPERTY"}));
  EXPECT_EQ(sorted(PossibleSourceLabels(parse("dealsWith+"), schema)),
            (std::vector<std::string>{"COUNTRY"}));
}

TEST(LabelGraphTest, CycleVertices) {
  LabelGraph graph;
  size_t a = graph.AddVertex("A");
  size_t b = graph.AddVertex("B");
  size_t c = graph.AddVertex("C");
  graph.AddEdge(a, b, 0);
  graph.AddEdge(b, a, 1);
  graph.AddEdge(b, c, 2);
  auto in_cycle = graph.CycleVertices();
  EXPECT_TRUE(in_cycle[a]);
  EXPECT_TRUE(in_cycle[b]);
  EXPECT_FALSE(in_cycle[c]);
}

TEST(LabelGraphTest, SelfLoopIsACycle) {
  LabelGraph graph;
  size_t a = graph.AddVertex("A");
  graph.AddEdge(a, a, 0);
  EXPECT_TRUE(graph.CycleVertices()[a]);
}

TEST(LabelGraphTest, EnumeratesSimplePathsAndCycles) {
  LabelGraph graph;
  size_t a = graph.AddVertex("A");
  size_t b = graph.AddVertex("B");
  size_t c = graph.AddVertex("C");
  graph.AddEdge(a, b, 0);
  graph.AddEdge(b, c, 1);
  graph.AddEdge(c, a, 2);  // 3-cycle
  std::vector<LabelGraph::Path> paths;
  EXPECT_TRUE(graph.EnumerateSimplePaths(1000, &paths));
  // Simple paths: AB, ABC, BC, BCA, CA, CAB plus cycles ABCA, BCAB, CABC.
  EXPECT_EQ(paths.size(), 9u);
  size_t cycles = 0;
  for (const auto& path : paths) {
    if (path.vertices.front() == path.vertices.back()) ++cycles;
  }
  EXPECT_EQ(cycles, 3u);
}

TEST(LabelGraphTest, ParallelEdgesMultiplyPaths) {
  LabelGraph graph;
  size_t a = graph.AddVertex("A");
  size_t b = graph.AddVertex("B");
  graph.AddEdge(a, b, 0);
  graph.AddEdge(a, b, 1);  // parallel edge with a distinct payload
  std::vector<LabelGraph::Path> paths;
  EXPECT_TRUE(graph.EnumerateSimplePaths(1000, &paths));
  EXPECT_EQ(paths.size(), 2u);
  EXPECT_NE(paths[0].payloads[0], paths[1].payloads[0]);
}

TEST(LabelGraphTest, PathCapTruncates) {
  LabelGraph graph;
  size_t a = graph.AddVertex("A");
  size_t b = graph.AddVertex("B");
  size_t c = graph.AddVertex("C");
  graph.AddEdge(a, b, 0);
  graph.AddEdge(b, c, 1);
  std::vector<LabelGraph::Path> paths;
  EXPECT_FALSE(graph.EnumerateSimplePaths(1, &paths));
}

TEST(LabelGraphTest, ReachablePairs) {
  LabelGraph graph;
  size_t a = graph.AddVertex("A");
  size_t b = graph.AddVertex("B");
  size_t c = graph.AddVertex("C");
  graph.AddEdge(a, b, 0);
  graph.AddEdge(b, c, 1);
  auto pairs = graph.ReachablePairs();
  EXPECT_EQ(pairs, (std::vector<std::pair<size_t, size_t>>{
                       {a, b}, {a, c}, {b, c}}));
}

}  // namespace
}  // namespace gqopt

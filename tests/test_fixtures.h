// Shared fixtures reproducing the paper's running example: the Fig 1 YAGO
// schema (5 node labels, 7 edges) and the Fig 2 YAGO database instance
// (7 nodes, 9 edges). Node ids follow the paper's n1..n7 as 0..6.

#ifndef GQOPT_TESTS_TEST_FIXTURES_H_
#define GQOPT_TESTS_TEST_FIXTURES_H_

#include "graph/property_graph.h"
#include "schema/graph_schema.h"

namespace gqopt {
namespace testing {

/// The Fig 1 schema: PERSON, CITY, PROPERTY, REGION, COUNTRY with
/// isMarriedTo, livesIn, owns, isLocatedIn (x3) and dealsWith.
inline GraphSchema Fig1Schema() {
  GraphSchema schema;
  (void)schema.AddProperty("PERSON", "name", PropertyType::kString);
  (void)schema.AddProperty("PERSON", "age", PropertyType::kInt);
  (void)schema.AddProperty("CITY", "name", PropertyType::kString);
  (void)schema.AddProperty("PROPERTY", "address", PropertyType::kString);
  (void)schema.AddProperty("REGION", "name", PropertyType::kString);
  (void)schema.AddProperty("COUNTRY", "name", PropertyType::kString);
  schema.AddEdge("PERSON", "isMarriedTo", "PERSON");
  schema.AddEdge("PERSON", "livesIn", "CITY");
  schema.AddEdge("PERSON", "owns", "PROPERTY");
  schema.AddEdge("PROPERTY", "isLocatedIn", "CITY");
  schema.AddEdge("CITY", "isLocatedIn", "REGION");
  schema.AddEdge("REGION", "isLocatedIn", "COUNTRY");
  schema.AddEdge("COUNTRY", "dealsWith", "COUNTRY");
  return schema;
}

// The Fig 2 node ids (paper n1..n7 -> 0..6).
inline constexpr NodeId kN1 = 0;  // PROPERTY "7 Queen Street"
inline constexpr NodeId kN2 = 1;  // PERSON John
inline constexpr NodeId kN3 = 2;  // PERSON Shradha
inline constexpr NodeId kN4 = 3;  // CITY Elerslie
inline constexpr NodeId kN5 = 4;  // REGION Grenoble
inline constexpr NodeId kN6 = 5;  // CITY Montbonnot
inline constexpr NodeId kN7 = 6;  // COUNTRY France

/// The Fig 2 database: consistent with Fig1Schema() (paper Example 3).
inline PropertyGraph Fig2Graph() {
  PropertyGraph graph;
  graph.AddNode("PROPERTY",
                {{"address", Value::String("7 Queen Street")}});
  graph.AddNode("PERSON",
                {{"name", Value::String("John")}, {"age", Value::Int(28)}});
  graph.AddNode("PERSON", {{"name", Value::String("Shradha")},
                           {"age", Value::Int(25)}});
  graph.AddNode("CITY", {{"name", Value::String("Elerslie")}});
  graph.AddNode("REGION", {{"name", Value::String("Grenoble")}});
  graph.AddNode("CITY", {{"name", Value::String("Montbonnot")}});
  graph.AddNode("COUNTRY", {{"name", Value::String("France")}});
  (void)graph.AddEdge(kN2, "isMarriedTo", kN3);
  (void)graph.AddEdge(kN3, "isMarriedTo", kN2);
  (void)graph.AddEdge(kN2, "livesIn", kN4);
  (void)graph.AddEdge(kN3, "livesIn", kN6);
  (void)graph.AddEdge(kN2, "owns", kN1);
  (void)graph.AddEdge(kN1, "isLocatedIn", kN6);
  (void)graph.AddEdge(kN6, "isLocatedIn", kN5);
  (void)graph.AddEdge(kN4, "isLocatedIn", kN5);
  (void)graph.AddEdge(kN5, "isLocatedIn", kN7);
  graph.Finalize();
  return graph;
}

}  // namespace testing
}  // namespace gqopt

#endif  // GQOPT_TESTS_TEST_FIXTURES_H_

// Differential tests: the CSR / flat-hash evaluation paths must return
// byte-identical results to the retained naive reference implementations
// (eval/naive_reference.h) on randomized graphs and on the structural edge
// cases (empty relations, self-loops, folded multi-column join keys).

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "eval/binary_relation.h"
#include "eval/csr_view.h"
#include "eval/naive_reference.h"
#include "graph/property_graph.h"
#include "ra/catalog.h"
#include "ra/executor.h"
#include "ra/ra_expr.h"
#include "util/rng.h"

namespace gqopt {
namespace {

BinaryRelation RandomRelation(size_t nodes, size_t edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> pairs;
  pairs.reserve(edges);
  for (size_t i = 0; i < edges; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.Uniform(nodes)),
                       static_cast<NodeId>(rng.Uniform(nodes)));
  }
  return BinaryRelation::FromPairs(std::move(pairs));
}

std::vector<NodeId> RandomNodeSet(size_t nodes, size_t count,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> out;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(static_cast<NodeId>(rng.Uniform(nodes)));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// Rows of `t` sorted lexicographically, duplicates retained — a
// row-order-insensitive fingerprint for table comparison.
std::vector<std::vector<NodeId>> SortedRows(const Table& t) {
  std::vector<std::vector<NodeId>> rows;
  rows.reserve(t.rows());
  for (size_t r = 0; r < t.rows(); ++r) {
    rows.emplace_back(t.Row(r), t.Row(r) + t.arity());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(CsrViewTest, RangesMatchPairRuns) {
  BinaryRelation r = RandomRelation(64, 256, 42);
  CsrView csr = CsrView::Build(r.pairs());
  EXPECT_EQ(csr.edges(), r.size());
  for (NodeId v = 0; v < 80; ++v) {
    auto [lo, hi] = csr.Range(v);
    size_t expected = 0;
    for (const Edge& e : r.pairs()) {
      if (e.first == v) ++expected;
    }
    ASSERT_EQ(hi - lo, expected) << "source " << v;
    for (uint32_t i = lo; i < hi; ++i) {
      EXPECT_EQ(r.pairs()[i].first, v);
    }
  }
}

TEST(CsrViewTest, EmptyRelation) {
  CsrView csr = CsrView::Build({});
  EXPECT_EQ(csr.edges(), 0u);
  EXPECT_EQ(csr.num_sources(), 0u);
  auto [lo, hi] = csr.Range(7);
  EXPECT_EQ(lo, hi);
}

TEST(CsrDifferentialTest, ComposeMatchesNaive) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    BinaryRelation a = RandomRelation(50 + seed * 13, 200, seed * 2 + 1);
    BinaryRelation b = RandomRelation(50 + seed * 13, 200, seed * 2 + 2);
    auto fast = BinaryRelation::Compose(a, b);
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(fast->pairs(), naive::Compose(a, b).pairs()) << "seed " << seed;
  }
}

TEST(CsrDifferentialTest, SparseHugeIdsFallBackToBinarySearch) {
  // Source ids near UINT32_MAX must not be offset-indexed (the array
  // would wrap/explode); EqualRange falls back to binary search and all
  // CSR-backed operations stay correct.
  NodeId huge = std::numeric_limits<NodeId>::max();
  BinaryRelation a = BinaryRelation::FromPairs({{1, 5}, {2, huge}});
  BinaryRelation b =
      BinaryRelation::FromPairs({{5, 6}, {huge, 7}, {huge, 9}});
  EXPECT_FALSE(b.SourceCsr().indexed());
  auto composed = BinaryRelation::Compose(a, b);
  ASSERT_TRUE(composed.ok());
  EXPECT_EQ(composed->pairs(), naive::Compose(a, b).pairs());
  EXPECT_EQ(composed->pairs(),
            (std::vector<Edge>{{1, 6}, {2, 7}, {2, 9}}));

  auto closure = BinaryRelation::TransitiveClosure(b);
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->pairs(), naive::TransitiveClosure(b).pairs());

  std::vector<NodeId> nodes{5, huge};
  EXPECT_EQ(b.SemiJoinSource(nodes).pairs(),
            naive::SemiJoinSource(b, nodes).pairs());
}

TEST(CsrDifferentialTest, ComposeEdgeCases) {
  BinaryRelation empty;
  BinaryRelation r = RandomRelation(10, 30, 3);
  EXPECT_TRUE(BinaryRelation::Compose(empty, r)->empty());
  EXPECT_TRUE(BinaryRelation::Compose(r, empty)->empty());
  // Self-loops compose with themselves.
  BinaryRelation loops =
      BinaryRelation::FromPairs({{1, 1}, {2, 2}, {1, 2}});
  EXPECT_EQ(BinaryRelation::Compose(loops, loops)->pairs(),
            naive::Compose(loops, loops).pairs());
}

TEST(CsrDifferentialTest, TransitiveClosureMatchesNaive) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    // Sparse and denser regimes, plus chains with self-loops.
    size_t n = 30 + seed * 17;
    BinaryRelation r = RandomRelation(n, n + seed * 40, seed + 11);
    auto fast = BinaryRelation::TransitiveClosure(r);
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(fast->pairs(), naive::TransitiveClosure(r).pairs())
        << "seed " << seed;
  }
  BinaryRelation loops = BinaryRelation::FromPairs({{0, 0}, {0, 1}, {1, 0}});
  EXPECT_EQ(BinaryRelation::TransitiveClosure(loops)->pairs(),
            naive::TransitiveClosure(loops).pairs());
  EXPECT_TRUE(BinaryRelation::TransitiveClosure(BinaryRelation())->empty());
}

TEST(CsrDifferentialTest, SemiJoinsMatchNaive) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    size_t n = 40 + seed * 9;
    BinaryRelation r = RandomRelation(n, n * 3, seed + 5);
    std::vector<NodeId> nodes = RandomNodeSet(n + 10, n / 3 + 1, seed + 6);
    EXPECT_EQ(r.SemiJoinSource(nodes).pairs(),
              naive::SemiJoinSource(r, nodes).pairs());
    EXPECT_EQ(r.SemiJoinTarget(nodes).pairs(),
              naive::SemiJoinTarget(r, nodes).pairs());
  }
  // Empty node set and empty relation.
  BinaryRelation r = RandomRelation(20, 40, 9);
  EXPECT_TRUE(r.SemiJoinSource({}).empty());
  EXPECT_TRUE(r.SemiJoinTarget({}).empty());
  EXPECT_TRUE(BinaryRelation().SemiJoinSource({1, 2}).empty());
}

TEST(CsrDifferentialTest, ReverseKeepsUniqueness) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    BinaryRelation r = RandomRelation(64, 300, seed + 21);
    BinaryRelation rev = r.Reverse();
    EXPECT_EQ(rev.size(), r.size());
    EXPECT_TRUE(std::is_sorted(rev.pairs().begin(), rev.pairs().end()));
    EXPECT_EQ(rev.Reverse().pairs(), r.pairs());
  }
}

// ---- Executor-level differentials -----------------------------------------

// A random multi-label graph; SEED labels a small node subset for seeded
// closures.
PropertyGraph RandomGraph(size_t nodes, size_t edges_per_label,
                          uint64_t seed) {
  Rng rng(seed);
  PropertyGraph graph;
  for (size_t i = 0; i < nodes; ++i) {
    graph.AddNode(i % 16 == 0 ? "SEED" : "N");
  }
  for (const char* label : {"e1", "e2", "e3"}) {
    for (size_t i = 0; i < edges_per_label; ++i) {
      (void)graph.AddEdge(static_cast<NodeId>(rng.Uniform(nodes)), label,
                          static_cast<NodeId>(rng.Uniform(nodes)));
    }
  }
  return graph;
}

Table RunPlan(const Catalog& catalog, const RaExprPtr& plan) {
  Executor executor(catalog);
  auto result = executor.Run(plan);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : Table{};
}

TEST(ExecutorDifferentialTest, SingleColumnJoinMatchesNaive) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    PropertyGraph graph = RandomGraph(60, 150, seed + 31);
    Catalog catalog(graph);
    // Join on y: left sorted on x, right sorted on y — exercises the
    // offset fast path (right side indexable on column 0).
    RaExprPtr plan = RaExpr::Join(RaExpr::EdgeScan("e1", "x", "y"),
                                  RaExpr::EdgeScan("e2", "y", "z"));
    Table fast = RunPlan(catalog, plan);
    Table left = RunPlan(catalog, RaExpr::EdgeScan("e1", "x", "y"));
    Table right = RunPlan(catalog, RaExpr::EdgeScan("e2", "y", "z"));
    EXPECT_EQ(SortedRows(fast), SortedRows(naive::Join(left, right)))
        << "seed " << seed;
  }
}

TEST(ExecutorDifferentialTest, UnsortedJoinMatchesNaive) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    PropertyGraph graph = RandomGraph(60, 150, seed + 41);
    Catalog catalog(graph);
    // Join on the two endpoints of differently-oriented scans: shared
    // column is column 1 on one side, forcing the flat hash path.
    RaExprPtr left_scan = RaExpr::EdgeScan("e1", "x", "y");
    RaExprPtr right_scan = RaExpr::EdgeScan("e2", "z", "y");
    Table fast =
        RunPlan(catalog, RaExpr::Join(left_scan, right_scan));
    Table left = RunPlan(catalog, left_scan);
    Table right = RunPlan(catalog, right_scan);
    EXPECT_EQ(SortedRows(fast), SortedRows(naive::Join(left, right)))
        << "seed " << seed;
  }
}

TEST(ExecutorDifferentialTest, MultiKeyJoinsMatchNaive) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    PropertyGraph graph = RandomGraph(24, 180, seed + 51);
    Catalog catalog(graph);
    // Two 3-column sides sharing all of x, y, z: the packed key folds
    // 3 columns, so probes must re-verify equality.
    RaExprPtr three_a = RaExpr::Join(RaExpr::EdgeScan("e1", "x", "y"),
                                     RaExpr::EdgeScan("e2", "y", "z"));
    RaExprPtr three_b = RaExpr::Join(RaExpr::EdgeScan("e1", "x", "y"),
                                     RaExpr::EdgeScan("e3", "y", "z"));
    Table fast = RunPlan(catalog, RaExpr::Join(three_a, three_b));
    Table left = RunPlan(catalog, three_a);
    Table right = RunPlan(catalog, three_b);
    EXPECT_EQ(SortedRows(fast), SortedRows(naive::Join(left, right)))
        << "seed " << seed;

    Table fast_semi = RunPlan(catalog, RaExpr::SemiJoin(three_a, three_b));
    EXPECT_EQ(SortedRows(fast_semi),
              SortedRows(naive::SemiJoin(left, right)))
        << "seed " << seed;
  }
}

TEST(ExecutorDifferentialTest, SemiJoinMatchesNaive) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    PropertyGraph graph = RandomGraph(60, 150, seed + 61);
    Catalog catalog(graph);
    RaExprPtr left_scan = RaExpr::EdgeScan("e1", "x", "y");
    RaExprPtr right_scan = RaExpr::EdgeScan("e2", "y", "z");
    Table fast =
        RunPlan(catalog, RaExpr::SemiJoin(left_scan, right_scan));
    Table left = RunPlan(catalog, left_scan);
    Table right = RunPlan(catalog, right_scan);
    EXPECT_EQ(SortedRows(fast), SortedRows(naive::SemiJoin(left, right)))
        << "seed " << seed;
  }
}

TEST(ExecutorDifferentialTest, SeededClosureMatchesNaive) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    PropertyGraph graph = RandomGraph(80, 120, seed + 71);
    Catalog catalog(graph);
    const BinaryRelation& base = catalog.EdgeTable("e1");
    std::vector<NodeId> seeds = graph.NodesWithLabel("SEED");
    for (SeedSide side : {SeedSide::kSource, SeedSide::kTarget}) {
      RaExprPtr plan = RaExpr::TransitiveClosure(
          RaExpr::EdgeScan("e1", "s", "t"), "s", "t",
          RaExpr::NodeScan({"SEED"}, side == SeedSide::kSource ? "s" : "t"),
          side);
      Table fast = RunPlan(catalog, plan);
      BinaryRelation expected =
          naive::SeededClosure(base, seeds, side == SeedSide::kSource);
      ASSERT_EQ(fast.rows(), expected.size()) << "seed " << seed;
      for (size_t r = 0; r < fast.rows(); ++r) {
        EXPECT_EQ(Edge(fast.At(r, 0), fast.At(r, 1)), expected.pairs()[r]);
      }
    }
  }
}

TEST(ExecutorDifferentialTest, MergeJoinMatchesNaive) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    PropertyGraph graph = RandomGraph(60, 150, seed + 81);
    Catalog catalog(graph);
    // Both sides sorted with the shared columns leading. Two shared
    // columns: a shape the bool-based detection could only hash.
    RaExprPtr left_scan = RaExpr::EdgeScan("e1", "x", "y");
    RaExprPtr right_scan = RaExpr::EdgeScan("e2", "x", "y");
    Table left = RunPlan(catalog, left_scan);
    Table right = RunPlan(catalog, right_scan);
    Table fast = RunPlan(catalog, RaExpr::Join(left_scan, right_scan));
    EXPECT_EQ(SortedRows(fast), SortedRows(naive::Join(left, right)))
        << "seed " << seed;
    // One shared leading column on both sides: also merges.
    RaExprPtr right_one = RaExpr::EdgeScan("e3", "x", "z");
    Table fast_one =
        RunPlan(catalog, RaExpr::Join(left_scan, right_one));
    EXPECT_EQ(SortedRows(fast_one),
              SortedRows(naive::Join(left, RunPlan(catalog, right_one))))
        << "seed " << seed;
  }
}

TEST(ExecutorDifferentialTest, ForcedStrategiesMatchNaive) {
  // Force each physical strategy on the same randomized inputs and diff
  // against the nested-loop reference; small inputs keep naive cheap.
  for (uint64_t seed = 0; seed < 3; ++seed) {
    PropertyGraph graph = RandomGraph(60, 150, seed + 101);
    Catalog catalog(graph);
    RaExprPtr left_scan = RaExpr::EdgeScan("e1", "x", "y");
    RaExprPtr right_scan = RaExpr::EdgeScan("e2", "x", "y");
    Table left = RunPlan(catalog, left_scan);
    Table right = RunPlan(catalog, right_scan);
    auto expected = SortedRows(naive::Join(left, right));
    for (JoinStrategy s :
         {JoinStrategy::kMergeSorted, JoinStrategy::kRadixHash,
          JoinStrategy::kFlatHash}) {
      RaExprPtr join = RaExpr::Join(left_scan, right_scan, s);
      EXPECT_EQ(SortedRows(RunPlan(catalog, join)), expected)
          << "seed " << seed << " strategy " << JoinStrategyName(s);
    }
  }
}

TEST(ExecutorDifferentialTest, RadixJoinMatchesFlatAtScale) {
  // Large enough that the radix path genuinely partitions (build rows
  // above the target partition size); nested-loop naive would be too
  // slow here, so diff radix against the already-pinned flat path.
  PropertyGraph graph = RandomGraph(2000, 20000, 7);
  Catalog catalog(graph);
  // Shared column trailing on both sides: the hash-fallback shape.
  RaExprPtr left_scan = RaExpr::EdgeScan("e1", "x", "y");
  RaExprPtr right_scan = RaExpr::EdgeScan("e2", "z", "y");
  RaExprPtr radix =
      RaExpr::Join(left_scan, right_scan, JoinStrategy::kRadixHash);
  RaExprPtr flat =
      RaExpr::Join(left_scan, right_scan, JoinStrategy::kFlatHash);
  Table radix_result = RunPlan(catalog, radix);
  Table flat_result = RunPlan(catalog, flat);
  EXPECT_GT(radix_result.rows(), 0u);
  EXPECT_EQ(SortedRows(radix_result), SortedRows(flat_result));
}

TEST(ExecutorDifferentialTest, RadixJoinVerifiesFoldedMultiColumnKeys) {
  // Three shared columns fold into the packed key, so radix probes must
  // re-verify row equality, partition by partition.
  PropertyGraph graph = RandomGraph(5000, 20000, 9);
  Catalog catalog(graph);
  RaExprPtr three_a = RaExpr::Join(RaExpr::EdgeScan("e1", "x", "y"),
                                   RaExpr::EdgeScan("e2", "y", "z"));
  RaExprPtr three_b = RaExpr::Join(RaExpr::EdgeScan("e1", "x", "y"),
                                   RaExpr::EdgeScan("e3", "y", "z"));
  RaExprPtr radix = RaExpr::Join(three_a, three_b, JoinStrategy::kRadixHash);
  RaExprPtr flat = RaExpr::Join(three_a, three_b, JoinStrategy::kFlatHash);
  EXPECT_EQ(SortedRows(RunPlan(catalog, radix)),
            SortedRows(RunPlan(catalog, flat)));
}

TEST(ExecutorDifferentialTest, MemoHitSharesDataAndStaysCorrect) {
  PropertyGraph graph = RandomGraph(40, 80, 99);
  Catalog catalog(graph);
  // Two disjuncts identical up to renaming: the second evaluation is a
  // zero-copy memo hit; a Distinct on top mutates one branch and must not
  // corrupt the other (copy-on-write).
  RaExprPtr branch_a = RaExpr::Join(RaExpr::EdgeScan("e1", "x", "y"),
                                    RaExpr::EdgeScan("e2", "y", "z"));
  RaExprPtr branch_b = RaExpr::Join(RaExpr::EdgeScan("e1", "a", "b"),
                                    RaExpr::EdgeScan("e2", "b", "c"));
  RaExprPtr plan = RaExpr::Union(
      RaExpr::Project(branch_a, {{"x", "u"}, {"z", "v"}}),
      RaExpr::Distinct(RaExpr::Project(branch_b, {{"a", "u"}, {"c", "v"}})));
  Table via_memo = RunPlan(catalog, plan);

  Table left = RunPlan(catalog, RaExpr::EdgeScan("e1", "x", "y"));
  Table right = RunPlan(catalog, RaExpr::EdgeScan("e2", "y", "z"));
  Table joined = naive::Join(left, right);
  // Expected: project(join) ++ distinct(project(join)).
  std::vector<std::vector<NodeId>> expected;
  std::vector<std::vector<NodeId>> distinct_rows;
  for (size_t r = 0; r < joined.rows(); ++r) {
    expected.push_back({joined.At(r, 0), joined.At(r, 2)});
    distinct_rows.push_back({joined.At(r, 0), joined.At(r, 2)});
  }
  std::sort(distinct_rows.begin(), distinct_rows.end());
  distinct_rows.erase(
      std::unique(distinct_rows.begin(), distinct_rows.end()),
      distinct_rows.end());
  expected.insert(expected.end(), distinct_rows.begin(),
                  distinct_rows.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(SortedRows(via_memo), expected);
}

}  // namespace
}  // namespace gqopt

// Memory governance end to end through the api facade
// (docs/ROBUSTNESS.md): a tight GQOPT_MEM_LIMIT aborts execution with the
// typed "resource: " status (never a bad_alloc or an OOM kill), a
// generous or absent budget returns bit-identical results, the injected
// kMemReserve fault drives the same abort path deterministically, the
// low-memory degradation rung changes plans but never results, and the
// plan cache respects its byte budget.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "api/database.h"
#include "api/server.h"
#include "datasets/yago.h"
#include "ra/explain.h"
#include "util/fault_injection.h"
#include "util/mem_tracker.h"

namespace gqopt {
namespace {

using api::ClassifyError;
using api::Database;
using api::ExecOptions;
using api::PreparedQueryPtr;
using api::QueryStage;
using api::Server;
using api::Session;

constexpr const char* kClosureQuery =
    "x1, x2 <- (x1, livesIn/isLocatedIn+/dealsWith+, x2)";
constexpr const char* kJoinQuery = "x1, x2 <- (x1, worksAt/isLocatedIn, x2)";

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(MemoryGovernanceTest, TightBudgetAbortsWithTypedResourceError) {
  Database db(YagoSchema(), GenerateYago({.persons = 200, .seed = 11}));
  ExecOptions options;
  options.mem_limit_bytes = 4096;  // far below the closure's footprint
  Session session(db, options);
  auto result = session.Query(kClosureQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
  EXPECT_EQ(ClassifyError(result.status()), QueryStage::kResource)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("resource: "), std::string::npos);
}

TEST(MemoryGovernanceTest, BoundedAndUnboundedResultsIdentical) {
  Database db(YagoSchema(), GenerateYago({.persons = 120, .seed = 5}));
  Session unbounded(db);
  auto baseline = unbounded.Query(kClosureQuery);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  ExecOptions generous;
  generous.mem_limit_bytes = int64_t{256} << 20;
  Session bounded(db, generous);
  auto tracked = bounded.Query(kClosureQuery);
  ASSERT_TRUE(tracked.ok()) << tracked.status().ToString();

  EXPECT_EQ(baseline->SortedRows(), tracked->SortedRows());
  // The run is accounted either way (the per-query tracker exists even
  // without a limit), so the peak is observable.
  EXPECT_GT(tracked->mem_peak_bytes, 0);
  EXPECT_GT(baseline->mem_peak_bytes, 0);
}

TEST(MemoryGovernanceTest, InjectedReservationFaultIsTypedAndClean) {
  Database db(YagoSchema(), GenerateYago({.persons = 60, .seed = 3}));
  Session session(db);
  ASSERT_TRUE(session.Query(kJoinQuery).ok());

  FaultInjector& injector = FaultInjector::Global();
  injector.Arm(FaultPoint::kMemReserve, FaultKind::kAlloc);
  auto result = session.Query(kJoinQuery);
  injector.DisarmAll();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(ClassifyError(result.status()), QueryStage::kResource)
      << result.status().ToString();

  // Disarmed, the same session serves the query again: the breach left
  // no residue in the database (trackers are per-execution).
  auto after = session.Query(kJoinQuery);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST(MemoryGovernanceTest, LowMemoryModeKeepsResultsIdentical) {
  Database db(YagoSchema(), GenerateYago({.persons = 150, .seed = 9}));
  Session regular(db);
  ExecOptions low;
  low.low_memory = true;
  low.dop = 4;
  Session degraded(db, low);
  for (const char* query : {kClosureQuery, kJoinQuery}) {
    auto a = regular.Query(query);
    auto b = degraded.Query(query);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->SortedRows(), b->SortedRows()) << query;
  }
}

TEST(MemoryGovernanceTest, LowMemoryIsPartOfThePlanCacheKey) {
  Database db(YagoSchema(), GenerateYago({.persons = 40}));
  db.set_plan_cache_enabled(true);
  ExecOptions options;
  bool hit = true;
  ASSERT_TRUE(db.Prepare(kJoinQuery, options, &hit).ok());
  EXPECT_FALSE(hit);
  // Same text, low-memory planning: must NOT reuse the full-fidelity
  // plan — the option changes join strategies.
  options.low_memory = true;
  ASSERT_TRUE(db.Prepare(kJoinQuery, options, &hit).ok());
  EXPECT_FALSE(hit);
  ASSERT_TRUE(db.Prepare(kJoinQuery, options, &hit).ok());
  EXPECT_TRUE(hit);
}

TEST(MemoryGovernanceTest, EstimateAndPeakAreObservable) {
  Database db(YagoSchema(), GenerateYago({.persons = 80, .seed = 2}));
  Session session(db);
  auto prepared = session.Prepare(kJoinQuery);
  ASSERT_TRUE(prepared.ok());
  EXPECT_GT((*prepared)->estimated_memory_bytes(), 0);
  EXPECT_EQ(EstimatePlanMemory((*prepared)->plan(), db.catalog()),
            (*prepared)->estimated_memory_bytes());

  auto analyzed = (*prepared)->ExplainAnalyze(session);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(analyzed->find("mem = "), std::string::npos) << *analyzed;
  EXPECT_NE(analyzed->find("peak memory "), std::string::npos) << *analyzed;
}

TEST(MemoryGovernanceTest, ExecOptionsReadMemLimitFromEnv) {
  ScopedEnv env("GQOPT_MEM_LIMIT", "4k");
  ExecOptions options = ExecOptions::FromEnv();
  EXPECT_EQ(options.mem_limit_bytes, 4096);
  options.mem_limit_bytes = 0;  // explicit beats env
  EXPECT_EQ(options.mem_limit_bytes, 0);
}

TEST(MemoryGovernanceTest, ServerBudgetReadFromEnvAndSettable) {
  ScopedEnv env("GQOPT_SERVER_MEM_LIMIT", "8m");
  Database db(YagoSchema(), GenerateYago({.persons = 20}));
  EXPECT_EQ(db.memory().limit(), int64_t{8} << 20);
  EXPECT_EQ(db.memory().label(), "server");
  db.set_memory_limit(int64_t{16} << 20);
  EXPECT_EQ(db.memory().limit(), int64_t{16} << 20);
}

TEST(MemoryGovernanceTest, ServerBudgetCapsUnlimitedQueries) {
  Database db(YagoSchema(), GenerateYago({.persons = 200, .seed = 11}));
  db.set_memory_limit(64 << 10);  // tiny server ceiling
  Session session(db);  // per-query limit unset: the root still governs
  auto result = session.Query(kClosureQuery);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(ClassifyError(result.status()), QueryStage::kResource)
      << result.status().ToString();
  // The failed run released everything: the budget is whole again, and
  // a query that fits proceeds — one overrun must not poison the server.
  EXPECT_EQ(db.memory().consumed(), 0);
  auto small = session.Query(kJoinQuery);
  EXPECT_TRUE(small.ok()) << small.status().ToString();
}

TEST(MemoryGovernanceTest, ResourceErrorsAreNotRetryable) {
  Status resource = Status::ResourceExhausted(
      "execute: resource: memory limit exceeded in join (query: consumed "
      "9000 of 8192 bytes)");
  EXPECT_EQ(ClassifyError(resource), QueryStage::kResource);
  EXPECT_FALSE(Server::IsRetryable(resource));
  Status shed = Status::ResourceExhausted(
      "overloaded: insufficient memory budget (estimated 1 bytes, "
      "available 0 of 1); retry with backoff");
  EXPECT_EQ(ClassifyError(shed), QueryStage::kOverloaded);
  EXPECT_TRUE(Server::IsRetryable(shed));
}

TEST(MemoryGovernanceTest, MemoryPressureEngagesLowMemoryRung) {
  EXPECT_EQ(Server::MemoryPressureLevel(0, 0), 0);  // unbounded
  EXPECT_EQ(Server::MemoryPressureLevel(100, 1000), 0);
  EXPECT_EQ(Server::MemoryPressureLevel(500, 1000), 1);
  EXPECT_EQ(Server::MemoryPressureLevel(750, 1000), 2);

  ExecOptions options;
  auto report = Server::ApplyDegradation(0, /*memory_level=*/1, &options);
  EXPECT_TRUE(options.low_memory);
  EXPECT_TRUE(report.low_memory);
  EXPECT_TRUE(report.any());
  EXPECT_NE(report.Summary().find("low-memory"), std::string::npos);
  EXPECT_NE(report.Summary().find("memory pressure 1"), std::string::npos);
}

TEST(MemoryGovernanceTest, PlanCacheRespectsByteBudget) {
  Database db(YagoSchema(), GenerateYago({.persons = 30}));
  db.set_plan_cache_enabled(true);
  db.set_plan_cache_memory_capacity(1);  // absurdly small: keep newest only
  std::string q1 = "x1, x2 <- (x1, owns, x2)";
  std::string q2 = "x1, x2 <- (x1, livesIn, x2)";
  ASSERT_TRUE(db.Prepare(q1).ok());
  ASSERT_TRUE(db.Prepare(q2).ok());
  api::PlanCacheStats stats = db.plan_cache_stats();
  // The newest entry survives its own oversize; the older one was
  // evicted for bytes, not count.
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_EQ(stats.mem_capacity, 1u);
  EXPECT_GT(stats.bytes, 0u);

  bool hit = false;
  ASSERT_TRUE(db.Prepare(q2, ExecOptions(), &hit).ok());
  EXPECT_TRUE(hit);  // the surviving newest entry still serves
}

}  // namespace
}  // namespace gqopt

// Fig 5 semantics evaluated on the paper's Fig 2 example database.

#include <gtest/gtest.h>

#include "algebra/path_parser.h"
#include "eval/path_eval.h"
#include "test_fixtures.h"

namespace gqopt {
namespace {

using testing::kN1;
using testing::kN2;
using testing::kN3;
using testing::kN4;
using testing::kN5;
using testing::kN6;
using testing::kN7;

class PathEvalTest : public ::testing::Test {
 protected:
  std::vector<Edge> Eval(const std::string& text) {
    auto expr = ParsePathExpr(text);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    auto result = EvalPath(graph_, *expr);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->pairs() : std::vector<Edge>{};
  }

  PropertyGraph graph_ = testing::Fig2Graph();
};

TEST_F(PathEvalTest, SingleEdgeLabel) {
  EXPECT_EQ(Eval("owns"), (std::vector<Edge>{{kN2, kN1}}));
  EXPECT_EQ(Eval("livesIn"),
            (std::vector<Edge>{{kN2, kN4}, {kN3, kN6}}));
  EXPECT_TRUE(Eval("unknownLabel").empty());
}

TEST_F(PathEvalTest, Reverse) {
  EXPECT_EQ(Eval("-owns"), (std::vector<Edge>{{kN1, kN2}}));
}

TEST_F(PathEvalTest, Concatenation) {
  // owns/isLocatedIn: John -> property -> Montbonnot.
  EXPECT_EQ(Eval("owns/isLocatedIn"), (std::vector<Edge>{{kN2, kN6}}));
}

TEST_F(PathEvalTest, AnnotatedConcatenationFiltersJunction) {
  // Annotation that matches the junction label keeps the result...
  EXPECT_EQ(Eval("owns/{PROPERTY}isLocatedIn"),
            (std::vector<Edge>{{kN2, kN6}}));
  // ...and a wrong junction label empties it.
  EXPECT_TRUE(Eval("owns/{CITY}isLocatedIn").empty());
}

TEST_F(PathEvalTest, UnionAndConjunction) {
  EXPECT_EQ(Eval("livesIn | owns"),
            (std::vector<Edge>{{kN2, kN1}, {kN2, kN4}, {kN3, kN6}}));
  EXPECT_EQ(Eval("livesIn & (livesIn | owns)"), Eval("livesIn"));
  EXPECT_TRUE(Eval("livesIn & owns").empty());
}

TEST_F(PathEvalTest, TransitiveClosure) {
  // isLocatedIn+ from the property: n1 -> n6 -> n5 -> n7.
  std::vector<Edge> tc = Eval("isLocatedIn+");
  EXPECT_EQ(tc, (std::vector<Edge>{{kN1, kN5},
                                   {kN1, kN6},
                                   {kN1, kN7},
                                   {kN4, kN5},
                                   {kN4, kN7},
                                   {kN5, kN7},
                                   {kN6, kN5},
                                   {kN6, kN7}}));
}

TEST_F(PathEvalTest, Example6BranchQuery) {
  // Paper Example 6: [owns]([isMarriedTo]livesIn) = {(n2, n4)}.
  EXPECT_EQ(Eval("[owns]([isMarriedTo]livesIn)"),
            (std::vector<Edge>{{kN2, kN4}}));
}

TEST_F(PathEvalTest, BranchRightIsExistential) {
  // livesIn[isLocatedIn]: people living in cities with a located-in edge;
  // both cities qualify here.
  EXPECT_EQ(Eval("livesIn[isLocatedIn]"), Eval("livesIn"));
  // Branch target that leads nowhere prunes everything.
  EXPECT_TRUE(Eval("livesIn[owns]").empty());
}

TEST_F(PathEvalTest, BranchKeepsLeftEndpoints) {
  // phi1[phi2] returns pairs of phi1, not extended by phi2 (Fig 5).
  std::vector<Edge> branched = Eval("owns[isLocatedIn]");
  EXPECT_EQ(branched, (std::vector<Edge>{{kN2, kN1}}));
}

TEST_F(PathEvalTest, Example13EquivalentForms) {
  // livesIn/isLocatedIn+ vs the rewritten fixed-length form.
  EXPECT_EQ(Eval("livesIn/isLocatedIn+"),
            Eval("livesIn/isLocatedIn | livesIn/isLocatedIn/isLocatedIn"));
}

TEST_F(PathEvalTest, BoundedRepeat) {
  EXPECT_EQ(Eval("isLocatedIn{1,2}"),
            Eval("isLocatedIn | isLocatedIn/isLocatedIn"));
  EXPECT_EQ(Eval("isLocatedIn{2,3}"),
            Eval("isLocatedIn/isLocatedIn | "
                 "isLocatedIn/isLocatedIn/isLocatedIn"));
  EXPECT_EQ(Eval("isMarriedTo{2,2}"),
            (std::vector<Edge>{{kN2, kN2}, {kN3, kN3}}));
}

TEST_F(PathEvalTest, ClosureOfCompound) {
  // (isMarriedTo/isMarriedTo)+ keeps cycling between the spouses.
  EXPECT_EQ(Eval("(isMarriedTo/isMarriedTo)+"),
            (std::vector<Edge>{{kN2, kN2}, {kN3, kN3}}));
}

TEST_F(PathEvalTest, DeadlineAborts) {
  auto expr = ParsePathExpr("isLocatedIn+");
  ASSERT_TRUE(expr.ok());
  Deadline expired = Deadline::AfterMillis(1);
  while (!expired.Expired()) {
  }
  auto result = EvalPath(graph_, *expr, expired);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace gqopt

#include <gtest/gtest.h>

#include "eval/graph_engine.h"
#include "query/query_parser.h"
#include "test_fixtures.h"

namespace gqopt {
namespace {

using testing::kN1;
using testing::kN2;
using testing::kN3;
using testing::kN4;
using testing::kN5;
using testing::kN6;
using testing::kN7;

class GraphEngineTest : public ::testing::Test {
 protected:
  ResultSet Run(const std::string& text) {
    auto query = ParseUcqt(text);
    EXPECT_TRUE(query.ok()) << text << ": " << query.status().ToString();
    GraphEngine engine(graph_);
    auto result = engine.Run(*query);
    EXPECT_TRUE(result.ok()) << text << ": " << result.status().ToString();
    return result.ok() ? *result : ResultSet{};
  }

  PropertyGraph graph_ = testing::Fig2Graph();
};

TEST_F(GraphEngineTest, SingleRelation) {
  ResultSet result = Run("x, y <- (x, owns, y)");
  EXPECT_EQ(result.rows,
            (std::vector<std::vector<NodeId>>{{kN2, kN1}}));
}

TEST_F(GraphEngineTest, ProjectionToOneVariable) {
  ResultSet result = Run("x <- (x, livesIn, y)");
  EXPECT_EQ(result.rows, (std::vector<std::vector<NodeId>>{{kN2}, {kN3}}));
}

TEST_F(GraphEngineTest, PaperC1Query) {
  // Example 5: people with a livesIn/isLocatedIn+ path who also own
  // something: only John (kN2).
  ResultSet result =
      Run("y <- (y, livesIn/isLocatedIn+, m), (y, owns, z)");
  EXPECT_EQ(result.rows, (std::vector<std::vector<NodeId>>{{kN2}}));
}

TEST_F(GraphEngineTest, JoinOnSharedTarget) {
  // Pairs of people living in cities located in the same region.
  ResultSet result = Run(
      "x, y <- (x, livesIn/isLocatedIn, r), (y, livesIn/isLocatedIn, r)");
  EXPECT_EQ(result.rows, (std::vector<std::vector<NodeId>>{
                             {kN2, kN2}, {kN2, kN3}, {kN3, kN2},
                             {kN3, kN3}}));
}

TEST_F(GraphEngineTest, LabelAtomsFilter) {
  ResultSet all = Run("x, y <- (x, isLocatedIn, y)");
  EXPECT_EQ(all.rows.size(), 4u);
  ResultSet cities =
      Run("x, y <- (x, isLocatedIn, y), label(x) = CITY");
  EXPECT_EQ(cities.rows, (std::vector<std::vector<NodeId>>{{kN4, kN5},
                                                           {kN6, kN5}}));
  ResultSet set = Run(
      "x, y <- (x, isLocatedIn, y), label(x) in {CITY, REGION}");
  EXPECT_EQ(set.rows.size(), 3u);
}

TEST_F(GraphEngineTest, ConflictingAtomsYieldNothing) {
  ResultSet result = Run(
      "x, y <- (x, isLocatedIn, y), label(x) = CITY, label(x) = REGION");
  EXPECT_TRUE(result.rows.empty());
}

TEST_F(GraphEngineTest, UnionOfDisjuncts) {
  ResultSet result = Run("x, y <- (x, owns, y) ++ (x, livesIn, y)");
  EXPECT_EQ(result.rows, (std::vector<std::vector<NodeId>>{
                             {kN2, kN1}, {kN2, kN4}, {kN3, kN6}}));
}

TEST_F(GraphEngineTest, DuplicateDisjunctsDeduplicated) {
  ResultSet result = Run("x, y <- (x, owns, y) ++ (x, owns, y)");
  EXPECT_EQ(result.rows.size(), 1u);
}

TEST_F(GraphEngineTest, SelfLoopRelation) {
  // (x, isMarriedTo/isMarriedTo, x): marriage is symmetric here, so both
  // spouses map to themselves.
  ResultSet result = Run("x <- (x, isMarriedTo/isMarriedTo, x)");
  EXPECT_EQ(result.rows, (std::vector<std::vector<NodeId>>{{kN2}, {kN3}}));
}

TEST_F(GraphEngineTest, SelfLoopOnFreshVariableWithOtherRelations) {
  ResultSet result = Run(
      "x <- (x, owns, z), (w, isMarriedTo/isMarriedTo, w)");
  // w ranges over self-loop nodes; x over owners; cross product projected
  // onto x and deduplicated.
  EXPECT_EQ(result.rows, (std::vector<std::vector<NodeId>>{{kN2}}));
}

TEST_F(GraphEngineTest, TriangleJoin) {
  // x owns z, z located in c, x's spouse lives in c2: multiple relations
  // chained through shared variables.
  ResultSet result = Run(
      "x, c <- (x, owns, z), (z, isLocatedIn, c), (x, isMarriedTo, s), "
      "(s, livesIn, c)");
  // John owns n1 located in Montbonnot (kN6); spouse Shradha lives in
  // Montbonnot: match.
  EXPECT_EQ(result.rows,
            (std::vector<std::vector<NodeId>>{{kN2, kN6}}));
}

TEST_F(GraphEngineTest, HeadVariableUnboundIsError) {
  auto query = ParseUcqt("x, w <- (x, owns, y)");
  ASSERT_TRUE(query.ok());
  GraphEngine engine(graph_);
  auto result = engine.Run(*query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphEngineTest, EmptyQueryReturnsNothing) {
  Ucqt empty;
  empty.head_vars = {"x", "y"};
  GraphEngine engine(graph_);
  auto result = engine.Run(empty);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(GraphEngineTest, ResultSetToBinaryRelation) {
  ResultSet result = Run("x, y <- (x, livesIn, y)");
  auto relation = result.ToBinaryRelation();
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->pairs(),
            (std::vector<Edge>{{kN2, kN4}, {kN3, kN6}}));
  ResultSet unary = Run("x <- (x, owns, y)");
  EXPECT_FALSE(unary.ToBinaryRelation().ok());
}

TEST_F(GraphEngineTest, DeadlinePropagates) {
  auto query = ParseUcqt("x, y <- (x, isLocatedIn+, y)");
  ASSERT_TRUE(query.ok());
  GraphEngine engine(graph_);
  Deadline expired = Deadline::AfterMillis(1);
  while (!expired.Expired()) {
  }
  auto result = engine.Run(*query, expired);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace gqopt

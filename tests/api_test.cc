// The api::Database facade: prepare-once/execute-many result identity
// against the hand-wired stage pipeline, plan-cache semantics (normalized
// keys, hit/miss counters, invalidation on mutation/swap — a statistics
// refresh keeps entries and handles), the error taxonomy, and the
// ExecOptions precedence rule (explicit setter > environment > default).
//
// tools/run_tier1.sh re-runs this suite with GQOPT_PLAN_CACHE=0 and =1:
// every assertion about cache behavior therefore pins the enabled state
// explicitly instead of relying on the environment default.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "api/database.h"
#include "api/stages.h"  // hand-wired pipeline for the identity check
#include "datasets/ldbc.h"
#include "datasets/workloads.h"
#include "datasets/yago.h"

namespace gqopt {
namespace {

using api::ClassifyError;
using api::Database;
using api::ExecOptions;
using api::PlanCacheStats;
using api::PreparedQueryPtr;
using api::QueryStage;
using api::Session;

// Saves an environment variable and restores it on scope exit, so the
// precedence tests cannot leak state into later tests (or the ambient
// GQOPT_PLANNER/GQOPT_PLAN_CACHE of a tier-1 re-run).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

std::vector<std::vector<NodeId>> HandWiredRows(const Database& db,
                                               const std::string& text) {
  auto query = ParseUcqt(text);
  EXPECT_TRUE(query.ok());
  auto rewritten = RewriteQuery(*query, db.schema());
  EXPECT_TRUE(rewritten.ok());
  const Ucqt& to_run = rewritten->reverted ? *query : rewritten->query;
  auto plan = UcqtToRa(to_run);
  EXPECT_TRUE(plan.ok());
  Executor executor(db.catalog());
  auto table = executor.Run(OptimizePlan(*plan, db.catalog()));
  EXPECT_TRUE(table.ok());
  api::QueryResult result;
  result.table = *table;
  return result.SortedRows();
}

TEST(ApiTest, PrepareOnceExecuteManyMatchesHandWiredPipeline) {
  Database db(YagoSchema(), GenerateYago({.persons = 80, .seed = 7}));
  Session session(db);
  const std::string text = "x1, x2 <- (x1, owns/isLocatedIn+, x2)";
  auto prepared = session.Prepare(text);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  auto expected = HandWiredRows(db, text);
  EXPECT_FALSE(expected.empty());
  for (int run = 0; run < 3; ++run) {
    auto result = (*prepared)->Execute(session);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->SortedRows(), expected) << "run " << run;
    EXPECT_GT(result->plan_operators, 0u);
    EXPECT_GT(result->rows_processed, 0u);
  }
}

TEST(ApiTest, WhitespaceVariantIsACacheHit) {
  Database db(YagoSchema(), GenerateYago({.persons = 40}));
  db.set_plan_cache_enabled(true);  // explicit: wins over GQOPT_PLAN_CACHE
  ExecOptions options;

  bool hit = true;
  auto first = db.Prepare("x1, x2 <- (x1, owns/isLocatedIn, x2)", options,
                          &hit);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(hit);

  auto variant = db.Prepare(
      "  x1,   x2\t<- (x1, owns/isLocatedIn, x2)  ", options, &hit);
  ASSERT_TRUE(variant.ok());
  EXPECT_TRUE(hit);
  // Not merely equivalent: the identical shared state — parse, rewrite
  // and planning were all skipped.
  EXPECT_EQ(first->get(), variant->get());

  PlanCacheStats stats = db.plan_cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ApiTest, PlanKnobsKeyTheCacheSeparately) {
  Database db(YagoSchema(), GenerateYago({.persons = 40}));
  db.set_plan_cache_enabled(true);
  const std::string text = "x1, x2 <- (x1, owns/isLocatedIn, x2)";

  ExecOptions dp;
  dp.planner = PlannerKind::kDp;
  ExecOptions greedy;
  greedy.planner = PlannerKind::kGreedy;

  bool hit = true;
  auto a = db.Prepare(text, dp, &hit);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(hit);
  auto b = db.Prepare(text, greedy, &hit);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(hit) << "different planner knobs must not share a plan";
  EXPECT_EQ(db.plan_cache_stats().entries, 2u);
}

TEST(ApiTest, DisabledCacheNeverHitsAndStoresNothing) {
  Database db(YagoSchema(), GenerateYago({.persons = 40}));
  db.set_plan_cache_enabled(false);  // explicit: wins over GQOPT_PLAN_CACHE
  ExecOptions options;
  const std::string text = "x1, x2 <- (x1, owns/isLocatedIn, x2)";

  bool hit = true;
  auto a = db.Prepare(text, options, &hit);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(hit);
  auto b = db.Prepare(text, options, &hit);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(hit);
  EXPECT_NE(a->get(), b->get());

  PlanCacheStats stats = db.plan_cache_stats();
  EXPECT_FALSE(stats.enabled);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 0u);

  // Per-call bypass with the cache enabled: nothing is stored either.
  db.set_plan_cache_enabled(true);
  ExecOptions bypass;
  bypass.use_plan_cache = false;
  ASSERT_TRUE(db.Prepare(text, bypass, &hit).ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(db.plan_cache_stats().entries, 0u);
}

TEST(ApiTest, GraphMutationInvalidatesCacheAndHandles) {
  Database db(YagoSchema(), GenerateYago({.persons = 40}));
  db.set_plan_cache_enabled(true);
  // This test pins the LEGACY write path (mutations rebuild everything);
  // delta-mode retention is covered by delta_differential_test.
  db.set_delta_enabled(false);
  Session session(db);
  const std::string text = "x1, x2 <- (x1, owns/isLocatedIn, x2)";
  auto prepared = session.Prepare(text);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(db.plan_cache_stats().entries, 1u);

  NodeId person = db.AddNode("PERSON");
  NodeId property = db.AddNode("PROPERTY");
  ASSERT_TRUE(db.AddEdge(person, "owns", property).ok());

  PlanCacheStats stats = db.plan_cache_stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_GE(stats.invalidations, 1u);

  // The old handle is a snapshot of a past generation: it refuses, and
  // Explain reports the staleness instead of costing the old plan
  // against the rebuilt catalog.
  auto result = (*prepared)->Execute(session);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(ClassifyError(result.status()), QueryStage::kExecute);
  EXPECT_NE(result.status().message().find("stale"), std::string::npos);
  EXPECT_NE((*prepared)->Explain().find("stale"), std::string::npos);

  // Re-preparing misses (re-plans against the mutated graph) and works.
  bool hit = true;
  auto again = db.Prepare(text, session.options(), &hit);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(hit);
  EXPECT_TRUE((*again)->Execute(session).ok());
}

TEST(ApiTest, DatasetSwapInvalidatesCacheAndHandles) {
  Database db(YagoSchema(), GenerateYago({.persons = 40}));
  db.set_plan_cache_enabled(true);
  Session session(db);
  auto prepared = session.Prepare("x1, x2 <- (x1, owns/isLocatedIn, x2)");
  ASSERT_TRUE(prepared.ok());

  db.Use(LdbcSchema(), GenerateLdbc({.persons = 20}));
  EXPECT_EQ(db.plan_cache_stats().entries, 0u);
  auto stale = (*prepared)->Execute(session);
  ASSERT_FALSE(stale.ok());
  EXPECT_NE(stale.status().message().find("stale"), std::string::npos);

  auto fresh = session.Prepare("x1, x2 <- (x1, knows/workAt, x2)");
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_TRUE((*fresh)->Execute(session).ok());
}

TEST(ApiTest, StatisticsRefreshKeepsCacheAndHandles) {
  Database db(YagoSchema(), GenerateYago({.persons = 40}));
  db.set_plan_cache_enabled(true);
  Session session(db);
  const std::string text = "x1, x2 <- (x1, owns/isLocatedIn, x2)";
  auto prepared = session.Prepare(text);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(db.plan_cache_stats().entries, 1u);

  db.RefreshStatistics();
  // The data did not change and neither generation moved: outstanding
  // handles stay executable AND cached entries keep serving — a refresh
  // only re-collects the statistics behind the next snapshot. Estimates
  // recompute from the same graph, so the cached plans stay costed
  // correctly.
  EXPECT_EQ(db.plan_cache_stats().entries, 1u);
  EXPECT_TRUE((*prepared)->Execute(session).ok());
  bool hit = false;
  auto again = db.Prepare(text, session.options(), &hit);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(prepared->get(), again->get());
}

TEST(ApiTest, ErrorTaxonomyDistinguishesStages) {
  Database db(YagoSchema(), GenerateYago({.persons = 40}));
  Session session(db);

  auto parse_error = session.Prepare("x1 <- (");
  ASSERT_FALSE(parse_error.ok());
  EXPECT_EQ(ClassifyError(parse_error.status()), QueryStage::kParse);

  auto rewrite_error =
      session.Prepare("x1, x2 <- (x1, noSuchEdgeLabel, x2)");
  ASSERT_FALSE(rewrite_error.ok());
  EXPECT_EQ(ClassifyError(rewrite_error.status()), QueryStage::kRewrite);

  // A head variable unbound in the body parses and rewrites but cannot
  // be translated to a plan.
  ExecOptions no_rewrite;
  no_rewrite.apply_schema_rewrite = false;
  auto plan_error =
      db.Prepare("x1, x2 <- (x1, owns, x1)", no_rewrite);
  ASSERT_FALSE(plan_error.ok());
  EXPECT_EQ(ClassifyError(plan_error.status()), QueryStage::kPlan);

  Database big(YagoSchema(), GenerateYago({.persons = 800}));
  Session hurried(big, [] {
    ExecOptions options;
    options.timeout_ms = 1;
    return options;
  }());
  auto prepared =
      hurried.Prepare("x1, x2 <- (x1, (isMarriedTo | hasChild)+, x2)");
  ASSERT_TRUE(prepared.ok());
  auto exec_error = (*prepared)->Execute(hurried);
  ASSERT_FALSE(exec_error.ok());
  EXPECT_EQ(ClassifyError(exec_error.status()), QueryStage::kExecute);
  EXPECT_EQ(exec_error.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ApiTest, SessionsAreScopedToTheirDatabase) {
  Database a(YagoSchema(), GenerateYago({.persons = 40}));
  Database b(YagoSchema(), GenerateYago({.persons = 40}));
  Session session_b(b);
  auto prepared = a.Prepare("x1, x2 <- (x1, owns/isLocatedIn, x2)");
  ASSERT_TRUE(prepared.ok());
  auto result = (*prepared)->Execute(session_b);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(ClassifyError(result.status()), QueryStage::kExecute);
}

TEST(ApiTest, ExecOptionsExplicitSettersBeatEnvironment) {
  ScopedEnv timeout("GQOPT_TIMEOUT_MS", "123");
  ScopedEnv reps("GQOPT_REPS", "7");
  ScopedEnv dop("GQOPT_DOP", "4");
  ScopedEnv planner("GQOPT_PLANNER", "greedy");
  ScopedEnv cache("GQOPT_PLAN_CACHE", "0");

  // Defaults never read the environment.
  ExecOptions defaults;
  EXPECT_EQ(defaults.timeout_ms, 2000);
  EXPECT_EQ(defaults.dop, 1);
  EXPECT_EQ(defaults.planner, PlannerKind::kDp);
  EXPECT_TRUE(defaults.use_plan_cache);

  // FromEnv overlays the environment...
  ExecOptions from_env = ExecOptions::FromEnv();
  EXPECT_EQ(from_env.timeout_ms, 123);
  EXPECT_EQ(from_env.repetitions, 7);
  EXPECT_EQ(from_env.dop, 4);
  EXPECT_EQ(from_env.planner, PlannerKind::kGreedy);
  EXPECT_FALSE(from_env.use_plan_cache);

  // ...and explicit assignment afterwards always wins.
  from_env.timeout_ms = 456;
  from_env.planner = PlannerKind::kDp;
  EXPECT_EQ(from_env.timeout_ms, 456);
  EXPECT_EQ(from_env.planner, PlannerKind::kDp);
}

TEST(ApiTest, UnsatisfiableQueryExecutesToEmptyResult) {
  Database db(YagoSchema(), GenerateYago({.persons = 40}));
  Session session(db);
  // livesIn targets CITY, owns sources PERSON: the composition is empty
  // on every schema-conforming database.
  auto prepared = session.Prepare("x1, x2 <- (x1, livesIn/owns, x2)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_TRUE((*prepared)->rewrite().unsatisfiable);
  auto result = (*prepared)->Execute(session);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows(), 0u);
}

TEST(ApiTest, SessionQueryReportsCacheHits) {
  Database db(YagoSchema(), GenerateYago({.persons = 40}));
  db.set_plan_cache_enabled(true);
  Session session(db);
  const std::string text = "x1, x2 <- (x1, owns/isLocatedIn, x2)";
  auto cold = session.Query(text);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->plan_cache_hit);
  auto warm = session.Query(text);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  EXPECT_EQ(warm->SortedRows(), cold->SortedRows());
}

// The acceptance sweep: cached execution is result-identical to cold
// execution on every LDBC/YAGO workload query.
class CachedVsColdWorkloadTest : public ::testing::Test {
 protected:
  void CheckWorkload(const std::vector<WorkloadQuery>& workload,
                     const GraphSchema& schema, PropertyGraph graph) {
    Database db(schema, std::move(graph));
    db.set_plan_cache_enabled(true);
    ExecOptions options = ExecOptions::FromEnv();
    options.timeout_ms = 0;  // correctness sweep, no deadline
    options.use_plan_cache = true;
    Session session(db, options);
    for (const WorkloadQuery& wq : workload) {
      ExecOptions cold_options = options;
      cold_options.use_plan_cache = false;
      Session cold_session(db, cold_options);
      auto cold = cold_session.Query(wq.text);
      ASSERT_TRUE(cold.ok()) << wq.id << ": " << cold.status().ToString();

      // Warm the cache, then serve from it.
      auto warm_miss = session.Query(wq.text);
      ASSERT_TRUE(warm_miss.ok()) << wq.id;
      auto warm_hit = session.Query(wq.text);
      ASSERT_TRUE(warm_hit.ok()) << wq.id;
      EXPECT_TRUE(warm_hit->plan_cache_hit) << wq.id;

      EXPECT_EQ(warm_miss->SortedRows(), cold->SortedRows()) << wq.id;
      EXPECT_EQ(warm_hit->SortedRows(), cold->SortedRows()) << wq.id;
    }
  }
};

TEST_F(CachedVsColdWorkloadTest, Yago) {
  CheckWorkload(YagoWorkload(), YagoSchema(),
                GenerateYago({.persons = 60, .seed = 5}));
}

TEST_F(CachedVsColdWorkloadTest, Ldbc) {
  CheckWorkload(LdbcWorkload(), LdbcSchema(),
                GenerateLdbc({.persons = 30, .seed = 11}));
}

}  // namespace
}  // namespace gqopt

// The incremental-maintenance subsystem (src/inc) in isolation: the
// DeltaStore's id assignment / dedup / seal caching, the two-cursor
// MergedEdgeRun union, in-place base merges (MergeSortedEdges and
// AppendNodeFinalized against a from-scratch rebuild), the incremental
// closure extension against a full recompute, overlay statistics against
// a recollect over the compacted graph, and the Database-level delta
// lifecycle: auto-compaction at the threshold and typed kDeltaMerge
// fault handling with retry.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/database.h"
#include "eval/binary_relation.h"
#include "graph/property_graph.h"
#include "inc/closure_delta.h"
#include "inc/delta_store.h"
#include "inc/merged_view.h"
#include "ra/catalog.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace gqopt {
namespace {

using api::Database;
using api::Session;

// The tests run on ad-hoc graphs with no schema declarations: skip the
// schema rewrite so the labels resolve as written.
api::ExecOptions NoRewrite() {
  api::ExecOptions options;
  options.apply_schema_rewrite = false;
  return options;
}

class IncTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().DisarmAll(); }
};

PropertyGraph SmallBase() {
  PropertyGraph graph;
  for (int i = 0; i < 6; ++i) graph.AddNode(i < 4 ? "A" : "B");
  (void)graph.AddEdge(0, "e", 1);
  (void)graph.AddEdge(1, "e", 2);
  (void)graph.AddEdge(4, "f", 5);
  graph.Finalize();
  return graph;
}

TEST_F(IncTest, DeltaStoreAssignsMonotoneIdsAndDedups) {
  PropertyGraph base = SmallBase();
  inc::DeltaStore delta;

  NodeId first = delta.AddNode(base, "A");
  NodeId second = delta.AddNode(base, "C");  // label new to the base
  EXPECT_EQ(first, base.num_nodes());
  EXPECT_EQ(second, base.num_nodes() + 1);

  // Duplicate of a base edge: counted no-op, stays out of the run.
  ASSERT_TRUE(delta.AddEdge(base, 0, "e", 1).ok());
  EXPECT_TRUE(delta.ForwardRun("e").empty());
  // Fresh edge, then its duplicate inside the delta.
  ASSERT_TRUE(delta.AddEdge(base, 2, "e", first).ok());
  ASSERT_TRUE(delta.AddEdge(base, 2, "e", first).ok());
  EXPECT_EQ(delta.ForwardRun("e").size(), 1u);
  // Out-of-range endpoint is refused outright.
  EXPECT_EQ(delta.AddEdge(base, second + 1, "e", 0).code(),
            StatusCode::kOutOfRange);

  inc::DeltaStats stats = delta.stats();
  EXPECT_EQ(stats.pending_nodes, 2u);
  EXPECT_EQ(stats.pending_edges, 1u);
  EXPECT_EQ(stats.dropped_duplicates, 2u);

  // Runs stay sorted-unique in both orientations as appends interleave.
  ASSERT_TRUE(delta.AddEdge(base, 0, "e", 3).ok());
  ASSERT_TRUE(delta.AddEdge(base, 0, "e", 2).ok());
  const std::vector<Edge>& fwd = delta.ForwardRun("e");
  EXPECT_TRUE(std::is_sorted(fwd.begin(), fwd.end()));
  const std::vector<Edge>& rev = delta.ReverseRun("e");
  EXPECT_TRUE(std::is_sorted(rev.begin(), rev.end()));
  EXPECT_EQ(fwd.size(), rev.size());
}

TEST_F(IncTest, SealIsCachedBetweenAppends) {
  PropertyGraph base = SmallBase();
  inc::DeltaStore delta;
  ASSERT_TRUE(delta.AddEdge(base, 0, "e", 3).ok());

  inc::SealedDeltaPtr a = delta.Seal();
  inc::SealedDeltaPtr b = delta.Seal();
  EXPECT_EQ(a.get(), b.get());  // repeated seals share one publication
  EXPECT_EQ(delta.stats().seals, 1u);

  ASSERT_TRUE(delta.AddEdge(base, 2, "e", 3).ok());
  inc::SealedDeltaPtr c = delta.Seal();
  EXPECT_NE(a.get(), c.get());
  // The earlier seal is immutable: it still sees one pending edge.
  EXPECT_EQ(a->ForwardRun("e").size(), 1u);
  EXPECT_EQ(c->ForwardRun("e").size(), 2u);
}

TEST_F(IncTest, MergedEdgeRunScansTheAscendingUnion) {
  std::vector<Edge> base = {{1, 2}, {3, 4}, {7, 8}};
  std::vector<Edge> extra = {{2, 3}, {3, 4}, {5, 6}};  // one overlap
  inc::MergedEdgeRun run{&base, &extra};
  EXPECT_EQ(run.size(), 6u);  // size() counts both sides, pre-dedup

  std::vector<Edge> seen;
  run.Scan([&](const Edge& e) {
    seen.push_back(e);
    return true;
  });
  std::vector<Edge> expected = {{1, 2}, {2, 3}, {3, 4}, {5, 6}, {7, 8}};
  EXPECT_EQ(seen, expected);  // ascending, equal pairs emitted once

  // Early termination: the callback's false stops the scan mid-union.
  seen.clear();
  run.Scan([&](const Edge& e) {
    seen.push_back(e);
    return seen.size() < 2;
  });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1], (Edge{2, 3}));

  EXPECT_EQ(run.Materialize(), expected);
}

TEST_F(IncTest, MergeSortedEdgesMatchesFromScratchRebuild) {
  Rng rng(31);
  const size_t kNodes = 300;
  std::vector<Edge> first, second;
  for (size_t i = 0; i < 1500; ++i) {
    Edge e{static_cast<NodeId>(rng.Uniform(kNodes)),
           static_cast<NodeId>(rng.Uniform(kNodes))};
    (i % 3 == 0 ? second : first).push_back(e);
  }

  // Reference: everything added up front, one Finalize.
  PropertyGraph all;
  for (size_t i = 0; i < kNodes; ++i) all.AddNode("N");
  NodeId extra_all = all.AddNode("M");
  for (const Edge& e : first) (void)all.AddEdge(e.first, "e", e.second);
  for (const Edge& e : second) (void)all.AddEdge(e.first, "e", e.second);
  (void)all.AddEdge(0, "g", extra_all);  // label only the second batch has
  all.Finalize();

  // Incremental: first batch finalized, second batch buffered through a
  // DeltaStore (which produces the disjoint sorted runs a compaction
  // replays) and merged in place.
  PropertyGraph grown;
  for (size_t i = 0; i < kNodes; ++i) grown.AddNode("N");
  for (const Edge& e : first) (void)grown.AddEdge(e.first, "e", e.second);
  grown.Finalize();
  inc::DeltaStore delta;
  NodeId extra_grown = delta.AddNode(grown, "M");
  EXPECT_EQ(extra_grown, extra_all);
  for (const Edge& e : second) {
    ASSERT_TRUE(delta.AddEdge(grown, e.first, "e", e.second).ok());
  }
  ASSERT_TRUE(delta.AddEdge(grown, 0, "g", extra_grown).ok());
  for (const inc::PendingNode& node : delta.nodes()) {
    grown.AppendNodeFinalized(node.label, node.properties);
  }
  for (const auto& [label, run] : delta.edges()) {
    grown.MergeSortedEdges(label, run.forward, run.reverse);
  }

  EXPECT_EQ(grown.num_nodes(), all.num_nodes());
  // num_edges() is not compared: the legacy AddEdge path counts raw
  // appends (duplicates included) while the delta path dedups at append
  // time — the edge *tables* below are the authoritative comparison.
  for (const char* label : {"e", "g"}) {
    EXPECT_EQ(grown.EdgesByLabel(label), all.EdgesByLabel(label)) << label;
    EXPECT_EQ(grown.ReverseEdgesByLabel(label),
              all.ReverseEdgesByLabel(label))
        << label;
  }
  for (const char* label : {"N", "M"}) {
    EXPECT_EQ(grown.NodesWithLabel(label), all.NodesWithLabel(label))
        << label;
  }
}

TEST_F(IncTest, ExtendedClosureMatchesFullRecompute) {
  Rng rng(47);
  const size_t kNodes = 120;
  std::vector<Edge> base_edges, new_edges;
  for (size_t i = 0; i < 400; ++i) {
    base_edges.push_back({static_cast<NodeId>(rng.Uniform(kNodes)),
                          static_cast<NodeId>(rng.Uniform(kNodes))});
  }
  for (size_t i = 0; i < 60; ++i) {
    new_edges.push_back({static_cast<NodeId>(rng.Uniform(kNodes)),
                         static_cast<NodeId>(rng.Uniform(kNodes))});
  }
  BinaryRelation base = BinaryRelation::FromPairs(base_edges);
  // The delta contract: new edges are sorted-unique and disjoint from
  // the base run (the DeltaStore enforces this at append time).
  std::sort(new_edges.begin(), new_edges.end());
  new_edges.erase(std::unique(new_edges.begin(), new_edges.end()),
                  new_edges.end());
  std::vector<Edge> disjoint;
  std::set_difference(new_edges.begin(), new_edges.end(),
                      base.pairs().begin(), base.pairs().end(),
                      std::back_inserter(disjoint));
  BinaryRelation merged = BinaryRelation::Union(
      base, BinaryRelation::FromPairs(disjoint));

  ExecContext ctx;
  auto full = BinaryRelation::TransitiveClosure(merged, ctx);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  auto prior = BinaryRelation::TransitiveClosure(base, ctx);
  ASSERT_TRUE(prior.ok());
  auto extended =
      inc::ExtendTransitiveClosure(*prior, disjoint, merged, ctx);
  ASSERT_TRUE(extended.ok()) << extended.status().ToString();
  // Bit-identity, not set equality: the canonical sorted-unique pair
  // vectors must match element for element.
  EXPECT_EQ(extended->pairs(), full->pairs());

  // No new edges: the prior fixpoint is returned unchanged.
  auto unchanged = inc::ExtendTransitiveClosure(*prior, {}, base, ctx);
  ASSERT_TRUE(unchanged.ok());
  EXPECT_EQ(unchanged->pairs(), prior->pairs());

  // Empty prior closure (first query after a mutation burst on a fresh
  // label): extension degenerates to the full fixpoint.
  BinaryRelation empty;
  auto from_empty =
      inc::ExtendTransitiveClosure(empty, merged.pairs(), merged, ctx);
  ASSERT_TRUE(from_empty.ok());
  EXPECT_EQ(from_empty->pairs(), full->pairs());
}

TEST_F(IncTest, OverlayStatisticsMatchCompactedRecollect) {
  Rng rng(53);
  const size_t kNodes = 200;
  PropertyGraph base;
  for (size_t i = 0; i < kNodes; ++i) {
    base.AddNode(i % 3 == 0 ? "A" : (i % 3 == 1 ? "B" : "C"));
  }
  std::vector<Edge> base_edges, delta_edges;
  for (size_t i = 0; i < 900; ++i) {
    Edge e{static_cast<NodeId>(rng.Uniform(kNodes)),
           static_cast<NodeId>(rng.Uniform(kNodes))};
    (i % 4 == 0 ? delta_edges : base_edges).push_back(e);
  }
  for (const Edge& e : base_edges) {
    (void)base.AddEdge(e.first, "e", e.second);
  }
  base.Finalize();

  // The compacted reference carries the same rows natively.
  PropertyGraph compacted = base;
  inc::DeltaStore delta;
  NodeId added = delta.AddNode(base, "D");  // fresh label, fresh extent
  for (const Edge& e : delta_edges) {
    ASSERT_TRUE(delta.AddEdge(base, e.first, "e", e.second).ok());
  }
  ASSERT_TRUE(delta.AddEdge(base, 0, "f", added).ok());  // fresh edge label
  compacted.AppendNodeFinalized("D");
  for (const auto& [label, run] : delta.edges()) {
    compacted.MergeSortedEdges(label, run.forward, run.reverse);
  }

  Catalog base_catalog(base);
  // Warm the base cache first: the overlay must extend cached numbers,
  // not recollect them.
  (void)base_catalog.stats().EdgeFor("e");
  (void)base_catalog.stats().GlobalClosureBound();
  Catalog overlay(&base_catalog, delta.Seal());
  Catalog recollect(compacted);

  for (const char* label : {"e", "f", "g"}) {  // touched, new, absent
    const EdgeLabelStats& live = overlay.stats().EdgeFor(label);
    const EdgeLabelStats& exact = recollect.stats().EdgeFor(label);
    EXPECT_EQ(live.rows, exact.rows) << label;
    EXPECT_EQ(live.distinct_sources, exact.distinct_sources) << label;
    EXPECT_EQ(live.distinct_targets, exact.distinct_targets) << label;
    EXPECT_DOUBLE_EQ(live.avg_out_degree, exact.avg_out_degree) << label;
    EXPECT_DOUBLE_EQ(live.avg_in_degree, exact.avg_in_degree) << label;
    EXPECT_EQ(live.source_label_bound, exact.source_label_bound) << label;
    EXPECT_EQ(live.target_label_bound, exact.target_label_bound) << label;
    EXPECT_DOUBLE_EQ(live.closure_bound, exact.closure_bound) << label;
    EXPECT_EQ(live.label_pairs, exact.label_pairs) << label;
  }
  EXPECT_DOUBLE_EQ(overlay.stats().GlobalClosureBound(),
                   recollect.stats().GlobalClosureBound());
  EXPECT_EQ(overlay.stats().total_nodes(), recollect.stats().total_nodes());
  EXPECT_EQ(overlay.stats().total_edges(), recollect.stats().total_edges());
  EXPECT_EQ(overlay.stats().NodeCount("D"), 1u);

  // The merged node extent is the sorted base extent plus the (greater)
  // pending ids.
  EXPECT_EQ(overlay.NodeExtent("D"), recollect.NodeExtent("D"));
  EXPECT_EQ(overlay.NodeExtent("A"), recollect.NodeExtent("A"));
}

TEST_F(IncTest, AutoCompactionFiresAtTheThreshold) {
  Database db;
  db.Use(GraphSchema(), SmallBase());
  db.set_delta_enabled(true);
  db.set_delta_merge_rows(3);

  ASSERT_TRUE(db.AddEdge(0, "e", 3).ok());
  NodeId node = db.AddNode("B");
  EXPECT_EQ(db.delta_stats().pending_nodes + db.delta_stats().pending_edges,
            2u);
  EXPECT_EQ(db.delta_stats().compactions, 0u);

  // The third pending row crosses the threshold: the delta merges into
  // the base and the buffer drains.
  ASSERT_TRUE(db.AddEdge(3, "e", node).ok());
  inc::DeltaStats stats = db.delta_stats();
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.compacted_rows, 3u);
  EXPECT_EQ(stats.pending_nodes, 0u);
  EXPECT_EQ(stats.pending_edges, 0u);
  EXPECT_EQ(db.graph().num_nodes(), 7u);
  EXPECT_TRUE(std::binary_search(db.graph().EdgesByLabel("e").begin(),
                                 db.graph().EdgesByLabel("e").end(),
                                 Edge{3, node}));
}

TEST_F(IncTest, MaterializedGraphIncludesPendingRows) {
  // Flat-graph consumers (graph engine, consistency checker) cannot
  // read the overlay: MaterializedGraph replays the pending delta into
  // a merged copy so they agree with relational execution mid-delta.
  Database db;
  db.Use(GraphSchema(), SmallBase());
  db.set_delta_enabled(true);
  db.set_delta_merge_rows(1u << 20);

  // Empty delta: borrows the master, no copy.
  EXPECT_EQ(db.MaterializedGraph().get(), &db.graph());

  NodeId node = db.AddNode("B");
  ASSERT_TRUE(db.AddEdge(0, "e", node).ok());
  ASSERT_GT(db.delta_stats().pending_edges, 0u);
  // The master is delta-blind; the materialized copy is not.
  EXPECT_FALSE(std::binary_search(db.graph().EdgesByLabel("e").begin(),
                                  db.graph().EdgesByLabel("e").end(),
                                  Edge{0, node}));
  auto merged = db.MaterializedGraph();
  EXPECT_NE(merged.get(), &db.graph());
  EXPECT_EQ(merged->num_nodes(), db.graph().num_nodes() + 1);
  EXPECT_TRUE(std::binary_search(merged->EdgesByLabel("e").begin(),
                                 merged->EdgesByLabel("e").end(),
                                 Edge{0, node}));
  // Materializing never drains the buffer or touches the master.
  EXPECT_GT(db.delta_stats().pending_edges, 0u);

  // After compaction the rows live on the master and the borrow returns.
  ASSERT_TRUE(db.Compact().ok());
  EXPECT_EQ(db.MaterializedGraph().get(), &db.graph());
  EXPECT_TRUE(std::binary_search(db.graph().EdgesByLabel("e").begin(),
                                 db.graph().EdgesByLabel("e").end(),
                                 Edge{0, node}));
}

TEST_F(IncTest, DeltaMergeFaultLeavesPendingRowsAndRetries) {
  Database db;
  db.Use(GraphSchema(), SmallBase());
  db.set_delta_enabled(true);
  ASSERT_TRUE(db.AddEdge(0, "e", 3).ok());

  Session session(db, NoRewrite());
  auto before = session.Query("x, y <- (x, e, y)");
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  FaultInjector::Global().Arm(FaultPoint::kDeltaMerge, FaultKind::kAlloc);
  Status failed = db.Compact();
  EXPECT_EQ(failed.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(failed.message().find("compact:"), std::string::npos);
  inc::DeltaStats stats = db.delta_stats();
  EXPECT_EQ(stats.failed_compactions, 1u);
  EXPECT_EQ(stats.pending_edges, 1u);  // nothing was lost
  EXPECT_EQ(stats.compactions, 0u);

  // Reads still serve the overlay while the merge is failing.
  auto during = session.Query("x, y <- (x, e, y)");
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(during->SortedRows(), before->SortedRows());

  // Disarmed, the retry merges and the answer is unchanged.
  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(db.Compact().ok());
  stats = db.delta_stats();
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.pending_edges, 0u);
  auto after = session.Query("x, y <- (x, e, y)");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->SortedRows(), before->SortedRows());
}

TEST_F(IncTest, DeltaMergeDeadlineFaultIsTyped) {
  Database db;
  db.Use(GraphSchema(), SmallBase());
  db.set_delta_enabled(true);
  ASSERT_TRUE(db.AddEdge(2, "e", 0).ok());
  FaultInjector::Global().Arm(FaultPoint::kDeltaMerge, FaultKind::kDeadline);
  Status failed = db.Compact();
  EXPECT_EQ(failed.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(failed.message().find("compact:"), std::string::npos);
  EXPECT_EQ(db.delta_stats().failed_compactions, 1u);
}

}  // namespace
}  // namespace gqopt

#include <gtest/gtest.h>

#include "query/query_parser.h"
#include "query/ucqt.h"

namespace gqopt {
namespace {

TEST(UcqtParserTest, SingleRelation) {
  auto q = ParseUcqt("x1, x2 <- (x1, knows/-hasCreator, x2)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->head_vars, (std::vector<std::string>{"x1", "x2"}));
  ASSERT_EQ(q->disjuncts.size(), 1u);
  ASSERT_EQ(q->disjuncts[0].relations.size(), 1u);
  EXPECT_EQ(q->disjuncts[0].relations[0].source_var, "x1");
  EXPECT_EQ(q->disjuncts[0].relations[0].target_var, "x2");
  EXPECT_EQ(q->disjuncts[0].relations[0].path->ToString(),
            "knows/-hasCreator");
}

TEST(UcqtParserTest, MultipleRelationsAndAtoms) {
  // The paper's C1 (Example 5) plus a label atom.
  auto q = ParseUcqt(
      "y <- (y, livesIn/isLocatedIn+, m), (y, owns, z), "
      "label(y) = PERSON");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const Cqt& cqt = q->disjuncts[0];
  EXPECT_EQ(cqt.relations.size(), 2u);
  ASSERT_EQ(cqt.atoms.size(), 1u);
  EXPECT_EQ(cqt.atoms[0].var, "y");
  EXPECT_EQ(cqt.atoms[0].labels, (std::vector<std::string>{"PERSON"}));
  // Body variables: everything but the head.
  EXPECT_EQ(cqt.BodyVars(), (std::vector<std::string>{"m", "z"}));
}

TEST(UcqtParserTest, LabelSetAtom) {
  auto q = ParseUcqt(
      "x, y <- (x, a/b, y), label(y) in {REGION, COUNTRY, CITY}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->disjuncts[0].atoms[0].labels,
            (std::vector<std::string>{"CITY", "COUNTRY", "REGION"}));
}

TEST(UcqtParserTest, UnionOfCqts) {
  auto q = ParseUcqt("x, y <- (x, a, y) ++ (x, b, y), (x, c, z)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->disjuncts.size(), 2u);
  EXPECT_EQ(q->disjuncts[0].relations.size(), 1u);
  EXPECT_EQ(q->disjuncts[1].relations.size(), 2u);
}

TEST(UcqtParserTest, UnionPlusVsClosurePlus) {
  // '++' at top level separates disjuncts; 'a+' inside stays a closure.
  auto q = ParseUcqt("x, y <- (x, a+, y) ++ (x, b+, y)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->disjuncts.size(), 2u);
  EXPECT_TRUE(q->disjuncts[0].relations[0].path->ContainsClosure());
}

TEST(UcqtParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseUcqt("no arrow").ok());
  EXPECT_FALSE(ParseUcqt("x <- ").ok());
  EXPECT_FALSE(ParseUcqt("x <- (x, a)").ok());
  EXPECT_FALSE(ParseUcqt("x <- (x, a, y, z)").ok());
  EXPECT_FALSE(ParseUcqt("x <- label(x) = A").ok());  // no relation
  EXPECT_FALSE(ParseUcqt("1x <- (1x, a, y)").ok());
  EXPECT_FALSE(ParseUcqt("x <- (x, a, y), label(y) in {}").ok());
}

TEST(UcqtTest, UnionCompatibilityEnforced) {
  Cqt a;
  a.head_vars = {"x"};
  a.relations.push_back(Relation{"x", PathExpr::Edge("e"), "y"});
  Cqt b;
  b.head_vars = {"z"};
  b.relations.push_back(Relation{"z", PathExpr::Edge("e"), "y"});
  auto bad = Ucqt::Make({"x"}, {a, b});
  EXPECT_FALSE(bad.ok());
  auto good = Ucqt::Make({"x"}, {a});
  EXPECT_TRUE(good.ok());
}

TEST(UcqtTest, RecursiveClassification) {
  auto rq = ParseUcqt("x, y <- (x, knows+, y)");
  auto nq = ParseUcqt("x, y <- (x, knows/knows, y)");
  ASSERT_TRUE(rq.ok() && nq.ok());
  EXPECT_TRUE(rq->IsRecursive());
  EXPECT_FALSE(nq->IsRecursive());
}

TEST(UcqtTest, EmptyQuery) {
  Ucqt empty;
  empty.head_vars = {"x", "y"};
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_FALSE(empty.IsRecursive());
  EXPECT_EQ(empty.ToString(), "x, y <- {}");
}

TEST(UcqtTest, ToStringRoundTrips) {
  for (const char* text : {
           "x1, x2 <- (x1, knows+, x2)",
           "x, y <- (x, a, y) ++ (x, b/c+, y)",
           "y <- (y, livesIn/isLocatedIn+, m), (y, owns, z), "
           "label(y) = PERSON",
       }) {
    auto q = ParseUcqt(text);
    ASSERT_TRUE(q.ok()) << text;
    auto reparsed = ParseUcqt(q->ToString());
    ASSERT_TRUE(reparsed.ok()) << q->ToString();
    EXPECT_EQ(reparsed->ToString(), q->ToString());
  }
}

TEST(UcqtTest, FromPathConvenience) {
  Ucqt q = Ucqt::FromPath("a", PathExpr::Edge("knows"), "b");
  EXPECT_EQ(q.head_vars, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(q.disjuncts.size(), 1u);
  EXPECT_EQ(q.disjuncts[0].relations[0].path->label(), "knows");
}

TEST(UcqtTest, AllVarsOrder) {
  auto q = ParseUcqt("x <- (x, a, y), (y, b, z), label(w) = A, (w, c, x)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->disjuncts[0].AllVars(),
            (std::vector<std::string>{"x", "y", "z", "w"}));
}

TEST(UcqtOrderByTest, ParsesOrderByAndLimit) {
  auto q = ParseUcqt("x, y <- (x, knows, y) order by y desc, x limit 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_EQ(q->order_by[0].var, "y");
  EXPECT_TRUE(q->order_by[0].descending);
  EXPECT_EQ(q->order_by[1].var, "x");
  EXPECT_FALSE(q->order_by[1].descending);
  EXPECT_EQ(q->limit, 10);
}

TEST(UcqtOrderByTest, ExplicitAscAndOrderWithoutLimit) {
  auto q = ParseUcqt("x, y <- (x, knows, y) order by x asc");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->order_by.size(), 1u);
  EXPECT_FALSE(q->order_by[0].descending);
  EXPECT_EQ(q->limit, -1);
}

TEST(UcqtOrderByTest, AppliesToTheWholeUnion) {
  auto q = ParseUcqt(
      "x, y <- (x, a, y) ++ (x, b, y) order by x limit 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->disjuncts.size(), 2u);
  EXPECT_EQ(q->order_by.size(), 1u);
  EXPECT_EQ(q->limit, 3);
}

TEST(UcqtOrderByTest, ParsesOffsetAfterLimit) {
  auto q = ParseUcqt(
      "x, y <- (x, knows, y) order by y desc, x limit 10 offset 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->limit, 10);
  EXPECT_EQ(q->offset, 3);
  // Absent offset stays 0 (no window shift).
  auto plain = ParseUcqt("x, y <- (x, knows, y) order by x limit 4");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->offset, 0);
}

TEST(UcqtOrderByTest, OrderedToStringRoundTrips) {
  for (const char* text :
       {"x, y <- (x, knows, y) order by y desc, x limit 7",
        "x, y <- (x, knows+, y) order by x",
        "x, y <- (x, knows, y) order by y, x desc limit 5 offset 2",
        "x, y <- (x, a, y) ++ (x, b, y) order by y asc limit 0"}) {
    auto q = ParseUcqt(text);
    ASSERT_TRUE(q.ok()) << text << ": " << q.status().ToString();
    auto reparsed = ParseUcqt(q->ToString());
    ASSERT_TRUE(reparsed.ok()) << q->ToString();
    EXPECT_EQ(reparsed->ToString(), q->ToString());
    EXPECT_EQ(reparsed->order_by, q->order_by);
    EXPECT_EQ(reparsed->limit, q->limit);
    EXPECT_EQ(reparsed->offset, q->offset);
  }
}

TEST(UcqtOrderByTest, RejectsInvalidClauses) {
  // Limit without an order: nondeterministic, rejected.
  EXPECT_FALSE(ParseUcqt("x, y <- (x, knows, y) limit 5").ok());
  // Order by a non-head variable.
  EXPECT_FALSE(ParseUcqt("x <- (x, knows, y) order by y").ok());
  // Duplicate order key.
  EXPECT_FALSE(ParseUcqt("x, y <- (x, knows, y) order by x, x desc").ok());
  // Bad direction / bad limit value.
  EXPECT_FALSE(ParseUcqt("x, y <- (x, knows, y) order by x down").ok());
  EXPECT_FALSE(
      ParseUcqt("x, y <- (x, knows, y) order by x limit -1").ok());
  EXPECT_FALSE(
      ParseUcqt("x, y <- (x, knows, y) order by x limit many").ok());
  // Offset without a limit (the suffix grammar is 'limit N offset M'),
  // and malformed offset values.
  EXPECT_FALSE(
      ParseUcqt("x, y <- (x, knows, y) order by x offset 2").ok());
  EXPECT_FALSE(
      ParseUcqt("x, y <- (x, knows, y) order by x limit 5 offset -1").ok());
  EXPECT_FALSE(
      ParseUcqt("x, y <- (x, knows, y) order by x limit 5 offset few").ok());
}

TEST(UcqtOrderByTest, MakeValidatesOrderKeys) {
  Cqt cqt;
  cqt.head_vars = {"x", "y"};
  cqt.relations.push_back(Relation{"x", PathExpr::Edge("e"), "y"});
  EXPECT_TRUE(
      Ucqt::Make({"x", "y"}, {cqt}, {OrderKey{"y", true}}, 4).ok());
  EXPECT_FALSE(Ucqt::Make({"x", "y"}, {cqt}, {OrderKey{"z", false}}).ok());
  EXPECT_FALSE(Ucqt::Make({"x", "y"}, {cqt}, {}, 4).ok());
}

}  // namespace
}  // namespace gqopt

// Integration: the full experiment pipeline at miniature scale — every
// workload query runs on both engines, baseline vs schema-enriched, and
// must produce identical result sets (the soundness/completeness claim on
// the real workloads rather than random ones).

#include <gtest/gtest.h>

#include "benchsup/harness.h"
#include "core/rewriter.h"
#include "datasets/ldbc.h"
#include "datasets/workloads.h"
#include "datasets/yago.h"
#include "eval/graph_engine.h"
#include "query/query_parser.h"
#include "ra/catalog.h"
#include "ra/executor.h"
#include "ra/optimizer.h"
#include "ra/ucqt_to_ra.h"

namespace gqopt {
namespace {

std::vector<std::vector<NodeId>> RelationalRows(const Catalog& catalog,
                                                const Ucqt& query) {
  auto plan = UcqtToRa(query);
  EXPECT_TRUE(plan.ok()) << query.ToString();
  Executor executor(catalog);
  auto table = executor.Run(OptimizePlan(*plan, catalog));
  EXPECT_TRUE(table.ok()) << query.ToString() << ": "
                          << table.status().ToString();
  std::vector<std::vector<NodeId>> rows;
  if (!table.ok()) return rows;
  Table sorted = *table;
  sorted.SortDistinct();
  for (size_t r = 0; r < sorted.rows(); ++r) {
    std::vector<NodeId> row;
    for (size_t c = 0; c < sorted.arity(); ++c) row.push_back(sorted.At(r, c));
    rows.push_back(std::move(row));
  }
  return rows;
}

class WorkloadEquivalenceTest : public ::testing::Test {
 protected:
  void CheckWorkload(const std::vector<WorkloadQuery>& workload,
                     const GraphSchema& schema, const PropertyGraph& graph) {
    Catalog catalog(graph);
    GraphEngine engine(graph);
    for (const WorkloadQuery& wq : workload) {
      auto query = ParseWorkloadQuery(wq);
      ASSERT_TRUE(query.ok()) << wq.id;
      auto rewritten = RewriteQuery(*query, schema);
      ASSERT_TRUE(rewritten.ok()) << wq.id << ": "
                                  << rewritten.status().ToString();

      auto baseline_graph = engine.Run(*query);
      ASSERT_TRUE(baseline_graph.ok()) << wq.id;
      auto schema_graph = engine.Run(rewritten->query);
      ASSERT_TRUE(schema_graph.ok()) << wq.id;
      EXPECT_EQ(baseline_graph->rows, schema_graph->rows)
          << wq.id << " (graph engine): baseline vs schema";

      auto baseline_rel = RelationalRows(catalog, *query);
      EXPECT_EQ(baseline_rel, baseline_graph->rows)
          << wq.id << ": relational vs graph engine (baseline)";
      auto schema_rel = RelationalRows(catalog, rewritten->query);
      EXPECT_EQ(schema_rel, baseline_graph->rows)
          << wq.id << ": relational vs graph engine (schema)";
    }
  }
};

TEST_F(WorkloadEquivalenceTest, YagoWorkloadAllEnginesAgree) {
  YagoConfig config;
  config.persons = 120;
  config.seed = 3;
  PropertyGraph graph = GenerateYago(config);
  CheckWorkload(YagoWorkload(), YagoSchema(), graph);
}

TEST_F(WorkloadEquivalenceTest, LdbcWorkloadAllEnginesAgree) {
  LdbcConfig config;
  config.persons = 40;
  config.seed = 9;
  PropertyGraph graph = GenerateLdbc(config);
  CheckWorkload(LdbcWorkload(), LdbcSchema(), graph);
}

TEST(HarnessTest, MeasuresRelationalAndGraphRuns) {
  YagoConfig config;
  config.persons = 60;
  PropertyGraph graph = GenerateYago(config);
  Catalog catalog(graph);
  auto query = ParseUcqt("x1, x2 <- (x1, owns/isLocatedIn, x2)");
  ASSERT_TRUE(query.ok());
  HarnessOptions options;
  options.timeout_ms = 5000;
  options.repetitions = 2;
  RunMeasurement relational = MeasureRelational(catalog, *query, options);
  EXPECT_TRUE(relational.feasible) << relational.error;
  EXPECT_GT(relational.seconds, 0);
  RunMeasurement graph_run = MeasureGraph(graph, *query, options);
  EXPECT_TRUE(graph_run.feasible) << graph_run.error;
  EXPECT_EQ(relational.result_rows, graph_run.result_rows);
}

TEST(HarnessTest, TimeoutMarksInfeasible) {
  // A heavier recursive query with an immediate timeout must be reported
  // infeasible, not crash — this is the Tab 5 bookkeeping.
  YagoConfig config;
  config.persons = 800;
  PropertyGraph graph = GenerateYago(config);
  Catalog catalog(graph);
  auto query = ParseUcqt("x1, x2 <- (x1, (isMarriedTo | hasChild)+, x2)");
  ASSERT_TRUE(query.ok());
  HarnessOptions options;
  options.timeout_ms = 1;
  options.repetitions = 1;
  RunMeasurement m = MeasureRelational(catalog, *query, options);
  EXPECT_FALSE(m.feasible);
  EXPECT_FALSE(m.error.empty());
}

TEST(HarnessTest, SchemaPreparationRoundTrip) {
  auto query = ParseUcqt(
      "x1, x2 <- (x1, livesIn/isLocatedIn+/dealsWith+, x2)");
  ASSERT_TRUE(query.ok());
  auto prepared = PrepareSchemaQuery(*query, YagoSchema());
  ASSERT_TRUE(prepared.ok());
  EXPECT_FALSE(prepared->reverted);
}

TEST(HarnessTest, FromEnvDefaults) {
  HarnessOptions options = HarnessOptions::FromEnv();
  EXPECT_GT(options.timeout_ms, 0);
  EXPECT_GE(options.repetitions, 1);
}

}  // namespace
}  // namespace gqopt

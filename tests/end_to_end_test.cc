// Integration: the full experiment pipeline at miniature scale, driven
// through the api::Database facade — every workload query runs on both
// engines, baseline vs schema-enriched, and must produce identical result
// sets (the soundness/completeness claim on the real workloads rather
// than random ones).

#include <gtest/gtest.h>

#include "api/database.h"
#include "benchsup/harness.h"
#include "datasets/ldbc.h"
#include "datasets/workloads.h"
#include "datasets/yago.h"
#include "eval/graph_engine.h"
#include "query/query_parser.h"

namespace gqopt {
namespace {

// The facade-driven relational run. Base options come from the
// environment so the tier-1 GQOPT_PLANNER=dp/greedy re-runs cover both
// planners through this suite too.
std::vector<std::vector<NodeId>> RelationalRows(const api::Database& db,
                                                const Ucqt& query) {
  api::ExecOptions options = api::ExecOptions::FromEnv();
  options.apply_schema_rewrite = false;  // run the query verbatim
  options.timeout_ms = 0;                // no deadline in correctness tests
  auto prepared = db.Prepare(query, options);
  EXPECT_TRUE(prepared.ok()) << query.ToString() << ": "
                             << prepared.status().ToString();
  if (!prepared.ok()) return {};
  api::Session session(db, options);
  auto result = (*prepared)->Execute(session);
  EXPECT_TRUE(result.ok()) << query.ToString() << ": "
                           << result.status().ToString();
  if (!result.ok()) return {};
  return result->SortedRows();
}

class WorkloadEquivalenceTest : public ::testing::Test {
 protected:
  void CheckWorkload(const std::vector<WorkloadQuery>& workload,
                     const GraphSchema& schema, PropertyGraph graph) {
    api::Database db(schema, std::move(graph));
    GraphEngine engine(db.graph());
    for (const WorkloadQuery& wq : workload) {
      auto query = ParseWorkloadQuery(wq);
      ASSERT_TRUE(query.ok()) << wq.id;
      auto rewritten = PrepareSchemaQuery(*query, schema);
      ASSERT_TRUE(rewritten.ok()) << wq.id << ": "
                                  << rewritten.status().ToString();

      auto baseline_graph = engine.Run(*query);
      ASSERT_TRUE(baseline_graph.ok()) << wq.id;
      auto schema_graph = engine.Run(rewritten->query);
      ASSERT_TRUE(schema_graph.ok()) << wq.id;
      EXPECT_EQ(baseline_graph->rows, schema_graph->rows)
          << wq.id << " (graph engine): baseline vs schema";

      auto baseline_rel = RelationalRows(db, *query);
      EXPECT_EQ(baseline_rel, baseline_graph->rows)
          << wq.id << ": relational vs graph engine (baseline)";
      auto schema_rel = RelationalRows(db, rewritten->query);
      EXPECT_EQ(schema_rel, baseline_graph->rows)
          << wq.id << ": relational vs graph engine (schema)";
    }
  }
};

TEST_F(WorkloadEquivalenceTest, YagoWorkloadAllEnginesAgree) {
  YagoConfig config;
  config.persons = 120;
  config.seed = 3;
  CheckWorkload(YagoWorkload(), YagoSchema(), GenerateYago(config));
}

TEST_F(WorkloadEquivalenceTest, LdbcWorkloadAllEnginesAgree) {
  LdbcConfig config;
  config.persons = 40;
  config.seed = 9;
  CheckWorkload(LdbcWorkload(), LdbcSchema(), GenerateLdbc(config));
}

TEST(HarnessTest, MeasuresRelationalAndGraphRuns) {
  YagoConfig config;
  config.persons = 60;
  api::Database db(YagoSchema(), GenerateYago(config));
  auto query = ParseUcqt("x1, x2 <- (x1, owns/isLocatedIn, x2)");
  ASSERT_TRUE(query.ok());
  api::ExecOptions options;
  options.timeout_ms = 5000;
  options.repetitions = 2;
  RunMeasurement relational = MeasureRelational(db, *query, options);
  EXPECT_TRUE(relational.feasible) << relational.error;
  EXPECT_GT(relational.seconds, 0);
  RunMeasurement graph_run = MeasureGraph(db, *query, options);
  EXPECT_TRUE(graph_run.feasible) << graph_run.error;
  EXPECT_EQ(relational.result_rows, graph_run.result_rows);
}

TEST(HarnessTest, TimeoutMarksInfeasible) {
  // A heavier recursive query with an immediate timeout must be reported
  // infeasible, not crash — this is the Tab 5 bookkeeping.
  YagoConfig config;
  config.persons = 800;
  api::Database db(YagoSchema(), GenerateYago(config));
  auto query = ParseUcqt("x1, x2 <- (x1, (isMarriedTo | hasChild)+, x2)");
  ASSERT_TRUE(query.ok());
  api::ExecOptions options;
  options.timeout_ms = 1;
  options.repetitions = 1;
  RunMeasurement m = MeasureRelational(db, *query, options);
  EXPECT_FALSE(m.feasible);
  EXPECT_FALSE(m.error.empty());
}

TEST(HarnessTest, SchemaPreparationRoundTrip) {
  auto query = ParseUcqt(
      "x1, x2 <- (x1, livesIn/isLocatedIn+/dealsWith+, x2)");
  ASSERT_TRUE(query.ok());
  auto prepared = PrepareSchemaQuery(*query, YagoSchema());
  ASSERT_TRUE(prepared.ok());
  EXPECT_FALSE(prepared->reverted);
}

TEST(HarnessTest, FromEnvDefaults) {
  api::ExecOptions options = api::ExecOptions::FromEnv();
  EXPECT_GT(options.timeout_ms, 0);
  EXPECT_GE(options.repetitions, 1);
}

}  // namespace
}  // namespace gqopt

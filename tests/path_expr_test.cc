#include <gtest/gtest.h>

#include "algebra/path_expr.h"
#include "algebra/path_parser.h"

namespace gqopt {
namespace {

PathExprPtr Parse(const std::string& text) {
  auto result = ParsePathExpr(text);
  EXPECT_TRUE(result.ok()) << text << ": " << result.status().ToString();
  return result.ok() ? *result : nullptr;
}

TEST(PathExprTest, FactoriesAndAccessors) {
  PathExprPtr e = PathExpr::Concat(PathExpr::Edge("a"), PathExpr::Edge("b"));
  EXPECT_EQ(e->op(), PathOp::kConcat);
  EXPECT_EQ(e->left()->label(), "a");
  EXPECT_EQ(e->right()->label(), "b");
  EXPECT_TRUE(e->annotation().empty());
}

TEST(PathExprTest, ToStringBasics) {
  EXPECT_EQ(Parse("a/b")->ToString(), "a/b");
  EXPECT_EQ(Parse("-a")->ToString(), "-a");
  EXPECT_EQ(Parse("a+")->ToString(), "a+");
  EXPECT_EQ(Parse("a | b")->ToString(), "a | b");
  EXPECT_EQ(Parse("a & b")->ToString(), "a & b");
  EXPECT_EQ(Parse("a[b]")->ToString(), "a[b]");
  EXPECT_EQ(Parse("[a]b")->ToString(), "[a]b");
  EXPECT_EQ(Parse("a{1,3}")->ToString(), "a{1,3}");
}

TEST(PathExprTest, PrecedenceInPrinting) {
  // Union binds loosest; closure tightest.
  EXPECT_EQ(Parse("(a|b)/c")->ToString(), "(a | b)/c");
  EXPECT_EQ(Parse("(a/b)+")->ToString(), "(a/b)+");
  EXPECT_EQ(Parse("a/b+")->ToString(), "a/b+");
  EXPECT_EQ(Parse("(a|b)&c")->ToString(), "(a | b) & c");
}

TEST(PathExprTest, AnnotationPrinting) {
  PathExprPtr e = PathExpr::AnnotatedConcat(
      PathExpr::Edge("a"), MakeAnnotationSet({"CITY", "REGION"}),
      PathExpr::Edge("b"));
  EXPECT_EQ(e->ToString(), "a/{CITY,REGION}b");
}

TEST(PathParserTest, RoundTripsItsOwnOutput) {
  for (const char* text :
       {"a/b/c", "a | b/c", "(a | b)+", "a[b/c]", "[a]b+", "-a/b{2,4}",
        "a/{CITY}b", "a/{CITY,REGION}b/c", "(a & b)[c]",
        "owns[isMarriedTo[livesIn[dealsWith]]]/isLocatedIn+"}) {
    PathExprPtr first = Parse(text);
    ASSERT_NE(first, nullptr) << text;
    PathExprPtr second = Parse(first->ToString());
    ASSERT_NE(second, nullptr) << first->ToString();
    EXPECT_TRUE(PathExpr::Equals(first, second)) << text;
  }
}

TEST(PathParserTest, BranchDisambiguation) {
  // 'a[b]' is a right branch; '[a]b' is a left branch.
  EXPECT_EQ(Parse("a[b]")->op(), PathOp::kBranchRight);
  EXPECT_EQ(Parse("[a]b")->op(), PathOp::kBranchLeft);
  // '[a]b/c' binds the left branch to b only.
  PathExprPtr e = Parse("[a]b/c");
  EXPECT_EQ(e->op(), PathOp::kConcat);
  EXPECT_EQ(e->left()->op(), PathOp::kBranchLeft);
}

TEST(PathParserTest, ConcatIsLeftAssociative) {
  PathExprPtr e = Parse("a/b/c");
  EXPECT_EQ(e->op(), PathOp::kConcat);
  EXPECT_EQ(e->left()->op(), PathOp::kConcat);
  EXPECT_EQ(e->right()->label(), "c");
}

TEST(PathParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParsePathExpr("").ok());
  EXPECT_FALSE(ParsePathExpr("a/").ok());
  EXPECT_FALSE(ParsePathExpr("(a").ok());
  EXPECT_FALSE(ParsePathExpr("a[b").ok());
  EXPECT_FALSE(ParsePathExpr("a{3,1}").ok());  // min > max
  EXPECT_FALSE(ParsePathExpr("a{0,2}").ok());  // min < 1
  EXPECT_FALSE(ParsePathExpr("-(a/b)").ok());  // reverse of compound
  EXPECT_FALSE(ParsePathExpr("a b").ok());     // trailing garbage
}

TEST(PathExprTest, EqualsIsStructural) {
  EXPECT_TRUE(PathExpr::Equals(Parse("a/b+"), Parse("a/b+")));
  EXPECT_FALSE(PathExpr::Equals(Parse("a/b"), Parse("b/a")));
  EXPECT_FALSE(PathExpr::Equals(Parse("a/{CITY}b"), Parse("a/b")));
  EXPECT_FALSE(PathExpr::Equals(Parse("a{1,2}"), Parse("a{1,3}")));
}

TEST(PathExprTest, CanonicalKeyDistinguishesShapes) {
  // ToString of these differ too, but CanonicalKey must be injective even
  // for shapes where precedence could be ambiguous.
  EXPECT_NE(Parse("a/(b/c)")->CanonicalKey(), Parse("a/b/c")->CanonicalKey());
  EXPECT_NE(Parse("[a]b")->CanonicalKey(), Parse("a[b]")->CanonicalKey());
  EXPECT_EQ(Parse("a/b")->CanonicalKey(), Parse("a / b")->CanonicalKey());
}

TEST(PathExprTest, ContainsClosureAndAnnotations) {
  EXPECT_TRUE(Parse("a/b+")->ContainsClosure());
  EXPECT_FALSE(Parse("a/b")->ContainsClosure());
  EXPECT_TRUE(Parse("a/{CITY}b")->HasAnnotations());
  EXPECT_FALSE(Parse("a/b")->HasAnnotations());
}

TEST(PathExprTest, StripAnnotations) {
  PathExprPtr annotated = Parse("a/{CITY}b/{REGION}c");
  PathExprPtr stripped = StripAnnotations(annotated);
  EXPECT_FALSE(stripped->HasAnnotations());
  EXPECT_TRUE(PathExpr::Equals(stripped, Parse("a/b/c")));
  // Stripping an already-plain expression returns the same node.
  PathExprPtr plain = Parse("a/b");
  EXPECT_EQ(StripAnnotations(plain), plain);
}

TEST(PathExprTest, CollectEdgeLabels) {
  auto labels = CollectEdgeLabels(Parse("a/-b | c[d]+"));
  EXPECT_EQ(labels, (std::set<std::string>{"a", "b", "c", "d"}));
}

TEST(PathExprTest, DesugarRepeatExpandsToUnion) {
  // a{1,3} = a | a/a | a/a/a
  PathExprPtr desugared = DesugarRepeat(Parse("a{1,3}"));
  EXPECT_TRUE(PathExpr::Equals(desugared, Parse("a | a/a | a/a/a")));
  // a{2,2} = a/a
  EXPECT_TRUE(
      PathExpr::Equals(DesugarRepeat(Parse("a{2,2}")), Parse("a/a")));
}

TEST(PathExprTest, DesugarRepeatIsRecursive) {
  PathExprPtr desugared = DesugarRepeat(Parse("x/(a{1,2})/y"));
  EXPECT_TRUE(PathExpr::Equals(desugared, Parse("x/(a | a/a)/y")));
  // No repeat nodes remain anywhere.
  std::function<bool(const PathExprPtr&)> has_repeat =
      [&](const PathExprPtr& e) -> bool {
    if (!e) return false;
    if (e->op() == PathOp::kRepeat) return true;
    return has_repeat(e->left()) || has_repeat(e->right());
  };
  EXPECT_FALSE(has_repeat(desugared));
}

TEST(PathExprTest, MakeAnnotationSetSortsAndDedups) {
  AnnotationSet set = MakeAnnotationSet({"B", "A", "B"});
  EXPECT_EQ(set, (AnnotationSet{"A", "B"}));
}

TEST(PathExprTest, SizeCountsNodes) {
  EXPECT_EQ(Parse("a")->Size(), 1u);
  EXPECT_EQ(Parse("a/b")->Size(), 3u);
  EXPECT_EQ(Parse("(a/b)+")->Size(), 4u);
}

}  // namespace
}  // namespace gqopt

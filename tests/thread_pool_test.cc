#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/exec_context.h"
#include "util/thread_pool.h"

namespace gqopt {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  // Destruction below joins; the count check happens after.
  while (count.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ShutdownFinishesQueuedTasks) {
  // Every task submitted before the destructor must run — shutdown never
  // drops queued work.
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&count] { ++count; });
    }
  }  // ~ThreadPool joins here
  EXPECT_EQ(count.load(), 500);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  bool ok = ParallelFor(&pool, 4, n, 64, Deadline(),
                        [&](size_t b, size_t e) {
                          for (size_t i = b; i < e; ++i) ++hits[i];
                          return true;
                        });
  EXPECT_TRUE(ok);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, MorselBoundariesAreDeterministic) {
  // Morsels depend only on (n, grain): per-morsel buffers concatenated in
  // index order must reproduce the identity sequence at any dop.
  ThreadPool pool(3);
  size_t n = 5000, grain = 128;
  for (int dop : {1, 2, 4}) {
    std::vector<std::vector<size_t>> outs((n + grain - 1) / grain);
    ASSERT_TRUE(ParallelFor(&pool, dop, n, grain, Deadline(),
                            [&](size_t b, size_t e) {
                              for (size_t i = b; i < e; ++i) {
                                outs[b / grain].push_back(i);
                              }
                              return true;
                            }));
    std::vector<size_t> flat;
    for (const auto& chunk : outs) {
      flat.insert(flat.end(), chunk.begin(), chunk.end());
    }
    std::vector<size_t> expected(n);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(flat, expected) << "dop " << dop;
  }
}

TEST(ParallelForTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  EXPECT_TRUE(ParallelFor(&pool, 4, 0, 16, Deadline(), [&](size_t, size_t) {
    ran = true;
    return true;
  }));
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  size_t n = 100;
  std::vector<int> hits(n, 0);  // no atomics needed: serial
  EXPECT_TRUE(ParallelFor(nullptr, 8, n, 7, Deadline(),
                          [&](size_t b, size_t e) {
                            for (size_t i = b; i < e; ++i) ++hits[i];
                            return true;
                          }));
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1);
}

TEST(ParallelForTest, BodyFailureAbortsAndReturnsFalse) {
  ThreadPool pool(2);
  std::atomic<size_t> morsels{0};
  bool ok = ParallelFor(&pool, 4, 1 << 20, 16, Deadline(),
                        [&](size_t b, size_t) {
                          ++morsels;
                          return b != 0;  // first morsel reports failure
                        });
  EXPECT_FALSE(ok);
  // The abort flag stops the loop long before all 65536 morsels run.
  EXPECT_LT(morsels.load(), size_t{1} << 16);
}

TEST(ParallelForTest, ExpiredDeadlineCancels) {
  ThreadPool pool(2);
  Deadline deadline = Deadline::AfterMillis(1);
  while (!deadline.Expired()) {
  }
  std::atomic<size_t> morsels{0};
  bool ok = ParallelFor(&pool, 4, 1 << 20, 16, deadline,
                        [&](size_t, size_t) {
                          ++morsels;
                          return true;
                        });
  EXPECT_FALSE(ok);
  // Expiry is checked per morsel claim: nearly all morsels are skipped.
  EXPECT_LT(morsels.load(), size_t{1} << 16);
}

TEST(ParallelForTest, PropagatesBodyException) {
  ThreadPool pool(3);
  auto run = [&] {
    ParallelFor(&pool, 4, 10000, 16, Deadline(), [&](size_t b, size_t) {
      if (b == 4992) throw std::runtime_error("boom");
      return true;
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
}

TEST(ParallelForTest, ExceptionStillDrainsWorkers) {
  // After a rethrow, no worker may still reference the (stack-allocated)
  // loop state; run many failing loops back to back to shake out
  // use-after-return under TSan-less CI.
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    EXPECT_THROW(
        ParallelFor(&pool, 4, 1000, 8, Deadline(),
                    [&](size_t b, size_t) -> bool {
                      if (b % 64 == 0) throw std::runtime_error("boom");
                      return true;
                    }),
        std::runtime_error);
  }
}

TEST(ExecContextTest, EffectiveDopDegrades) {
  ExecContext serial;
  serial.dop = 1;
  EXPECT_EQ(serial.EffectiveDop(1 << 20), 1);
  EXPECT_EQ(serial.TaskPool(), nullptr);

  ExecContext parallel;
  parallel.dop = 4;
  EXPECT_EQ(parallel.EffectiveDop(parallel.parallel_min_rows - 1), 1);
  EXPECT_EQ(parallel.EffectiveDop(parallel.parallel_min_rows), 4);
  EXPECT_NE(parallel.TaskPool(), nullptr);

  parallel.parallel_min_rows = 0;
  EXPECT_EQ(parallel.EffectiveDop(0), 4);
}

TEST(ExecContextTest, ParallelGrainIsDeterministic) {
  EXPECT_EQ(ParallelGrain(100, 4), 1024u);          // floored
  EXPECT_EQ(ParallelGrain(1 << 20, 4), 65536u);     // n / (dop * 4)
  EXPECT_EQ(ParallelGrain(16, 4, 1), 1u);           // custom floor
  EXPECT_EQ(ParallelGrain(0, 4, 1), 1u);            // never zero
}

}  // namespace
}  // namespace gqopt

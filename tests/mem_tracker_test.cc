// Unit tests for the hierarchical memory tracker (util/mem_tracker.h):
// accounting truthfulness, the sticky breach latch, chunked parent
// refills, concurrent charge/release balance, the RAII helpers and the
// GQOPT_*_MEM_LIMIT byte-size parser.

#include "util/mem_tracker.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/fault_injection.h"

namespace gqopt {
namespace {

TEST(MemTrackerTest, AccountsConsumptionAndPeak) {
  MemoryTracker mem(0, "t");
  EXPECT_TRUE(mem.Charge(100));
  EXPECT_TRUE(mem.Charge(50));
  EXPECT_EQ(mem.consumed(), 150);
  EXPECT_EQ(mem.peak(), 150);
  mem.Release(120);
  EXPECT_EQ(mem.consumed(), 30);
  EXPECT_EQ(mem.peak(), 150);  // high-water mark survives releases
  EXPECT_TRUE(mem.Charge(20));
  EXPECT_EQ(mem.peak(), 150);
  EXPECT_FALSE(mem.breached());
}

TEST(MemTrackerTest, UnboundedNeverBreaches) {
  MemoryTracker mem;  // limit 0 = unbounded
  EXPECT_TRUE(mem.Charge(int64_t{8} << 40));
  EXPECT_FALSE(mem.breached());
  EXPECT_EQ(mem.available(), INT64_MAX);
}

TEST(MemTrackerTest, BreachLatchesAndIsSticky) {
  MemoryTracker mem(1000, "t");
  EXPECT_TRUE(mem.Charge(900));
  EXPECT_FALSE(mem.breached());
  // The crossing charge is still recorded (truthful accounting) but
  // returns false and latches.
  EXPECT_FALSE(mem.Charge(200));
  EXPECT_TRUE(mem.breached());
  EXPECT_EQ(mem.consumed(), 1100);
  EXPECT_EQ(mem.available(), 0);
  // Sticky: dropping back under the limit does not clear the latch —
  // only an explicit ResetBreach does.
  mem.Release(600);
  EXPECT_TRUE(mem.breached());
  EXPECT_FALSE(mem.Charge(1));
  mem.ResetBreach();
  EXPECT_TRUE(mem.Charge(1));
}

TEST(MemTrackerTest, BreachStatusIsTypedAndPrefixed) {
  MemoryTracker mem(10, "query");
  EXPECT_FALSE(mem.Charge(100));
  Status status = mem.BreachStatus("radix join");
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(status.message().starts_with("resource: "));
  EXPECT_NE(status.message().find("radix join"), std::string::npos);
  EXPECT_NE(status.message().find("query"), std::string::npos);
}

TEST(MemTrackerTest, ChildRefillsFromParentInChunks) {
  MemoryTracker parent(0, "server");
  MemoryTracker child(0, "query", &parent);
  // A small charge acquires a full chunk from the parent, so subsequent
  // small growth stays local (the parent atomic is not touched again
  // until the chunk is exhausted).
  EXPECT_TRUE(child.Charge(1));
  int64_t first = parent.consumed();
  EXPECT_GE(first, kMemRefillChunk);
  EXPECT_TRUE(child.Charge(kMemRefillChunk / 2));
  EXPECT_EQ(parent.consumed(), first);
  // Crossing the chunk boundary extends the reservation.
  EXPECT_TRUE(child.Charge(kMemRefillChunk));
  EXPECT_GT(parent.consumed(), first);
}

TEST(MemTrackerTest, ChildBreachesOnParentLimit) {
  MemoryTracker parent(kMemRefillChunk, "server");
  MemoryTracker child(0, "query", &parent);  // child itself unbounded
  EXPECT_FALSE(child.Charge(4 * kMemRefillChunk));
  EXPECT_TRUE(child.breached());
  // The shared parent reports the overrun but is NOT latched: the latch
  // poisons only the query that overran, not every query after it.
  EXPECT_FALSE(parent.breached());
}

TEST(MemTrackerTest, ParentRecoversAfterOverrunningChildDies) {
  MemoryTracker parent(2 * kMemRefillChunk, "server");
  {
    MemoryTracker overrunner(0, "query", &parent);
    EXPECT_FALSE(overrunner.Charge(8 * kMemRefillChunk));
    overrunner.Release(8 * kMemRefillChunk);
  }
  EXPECT_EQ(parent.consumed(), 0);
  // A later well-behaved query charges against a whole budget again.
  MemoryTracker next(0, "query", &parent);
  EXPECT_TRUE(next.Charge(kMemRefillChunk / 2));
  EXPECT_FALSE(next.breached());
}

TEST(MemTrackerTest, DestructorReturnsReservationToParent) {
  MemoryTracker parent(0, "server");
  {
    MemoryTracker child(0, "query", &parent);
    EXPECT_TRUE(child.Charge(3 * kMemRefillChunk));
    child.Release(3 * kMemRefillChunk);
    EXPECT_GT(parent.consumed(), 0);  // slack reservation still held
  }
  EXPECT_EQ(parent.consumed(), 0);
}

TEST(MemTrackerTest, ConcurrentChargeReleaseBalances) {
  MemoryTracker root(0, "server");
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&root] {
      MemoryTracker child(0, "query", &root);
      for (int i = 0; i < kIters; ++i) {
        int64_t bytes = 64 + (i % 7) * 4096;
        ASSERT_TRUE(child.Charge(bytes));
        if (i % 3 == 0) child.Charge(kMemRefillChunk);
        child.Release(bytes);
        if (i % 3 == 0) child.Release(kMemRefillChunk);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Every child released what it charged and returned its reservation at
  // destruction: the root must be exactly balanced, and never breached.
  EXPECT_EQ(root.consumed(), 0);
  EXPECT_FALSE(root.breached());
  EXPECT_GT(root.peak(), 0);
}

TEST(MemTrackerTest, ConcurrentChargesObserveSharedLimit) {
  // Root budget far below what the threads try to charge: every thread
  // must observe the breach through its own child, and accounting must
  // stay exact.
  MemoryTracker root(4 * kMemRefillChunk, "server");
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> breaches{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&root, &breaches] {
      MemoryTracker child(0, "query", &root);
      bool ok = true;
      for (int i = 0; i < 64 && ok; ++i) {
        ok = child.Charge(kMemRefillChunk);
      }
      if (!ok) breaches.fetch_add(1);
      child.Release(child.consumed());
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(breaches.load(), kThreads);
  EXPECT_EQ(root.consumed(), 0);
}

TEST(MemTrackerTest, FaultInjectionBreachesProbedTracker) {
  FaultInjector& injector = FaultInjector::Global();
  injector.Arm(FaultPoint::kMemReserve, FaultKind::kAlloc);
  MemoryTracker probed(0, "query", nullptr, /*probe_faults=*/true);
  MemoryTracker silent(0, "query");
  EXPECT_FALSE(probed.Charge(1));
  EXPECT_TRUE(probed.breached());
  EXPECT_TRUE(silent.Charge(1));  // only probing trackers observe faults
  injector.DisarmAll();
}

TEST(MemTrackerTest, TrackedBytesReleasesOnDestruction) {
  MemoryTracker mem(0, "t");
  {
    TrackedBytes charge(&mem);
    EXPECT_TRUE(charge.Add(500));
    EXPECT_EQ(mem.consumed(), 500);
    charge.Drop(200);
    EXPECT_EQ(mem.consumed(), 300);
    EXPECT_EQ(charge.held(), 300);
  }
  EXPECT_EQ(mem.consumed(), 0);
}

TEST(MemTrackerTest, TrackedBytesMoveTransfersOwnership) {
  MemoryTracker mem(0, "t");
  TrackedBytes a(&mem);
  EXPECT_TRUE(a.Add(100));
  TrackedBytes b(std::move(a));
  EXPECT_EQ(b.held(), 100);
  EXPECT_EQ(a.held(), 0);  // NOLINT(bugprone-use-after-move)
  b = TrackedBytes(&mem);  // assignment releases the old charge
  EXPECT_EQ(mem.consumed(), 0);
}

TEST(MemTrackerTest, GrowthChargeChargesDeltasOnly) {
  MemoryTracker mem(0, "t");
  GrowthCharge growth(&mem);
  EXPECT_TRUE(growth.Update(1000));
  EXPECT_EQ(mem.consumed(), 1000);
  EXPECT_TRUE(growth.Update(800));  // shrink: no new charge
  EXPECT_EQ(mem.consumed(), 1000);
  EXPECT_TRUE(growth.Update(1500));
  EXPECT_EQ(mem.consumed(), 1500);
  GrowthCharge untracked;  // null tracker: free no-op
  EXPECT_TRUE(untracked.Update(1 << 30));
}

TEST(MemTrackerTest, GrowthChargeReportsBreach) {
  MemoryTracker mem(1000, "t");
  GrowthCharge growth(&mem);
  EXPECT_TRUE(growth.Update(900));
  EXPECT_FALSE(growth.Update(1200));
  // Once breached, even non-growing updates report it (the hot-loop
  // abort signal stays up).
  EXPECT_FALSE(growth.Update(100));
}

TEST(MemTrackerTest, ParseByteSizeHandlesSuffixesAndGarbage) {
  EXPECT_EQ(ParseByteSize(nullptr), 0);
  EXPECT_EQ(ParseByteSize(""), 0);
  EXPECT_EQ(ParseByteSize("12345"), 12345);
  EXPECT_EQ(ParseByteSize("4k"), int64_t{4} << 10);
  EXPECT_EQ(ParseByteSize("256K"), int64_t{256} << 10);
  EXPECT_EQ(ParseByteSize("64m"), int64_t{64} << 20);
  EXPECT_EQ(ParseByteSize("2g"), int64_t{2} << 30);
  EXPECT_EQ(ParseByteSize("2gb"), int64_t{2} << 30);
  // Malformed knobs must parse as "unbounded", never invent a limit.
  EXPECT_EQ(ParseByteSize("lots"), 0);
  EXPECT_EQ(ParseByteSize("-5"), 0);
  EXPECT_EQ(ParseByteSize("10x"), 0);
  EXPECT_EQ(ParseByteSize("10kb2"), 0);
}

}  // namespace
}  // namespace gqopt

// Differential tests for the ordered operators: Sort, Limit, and the
// bounded-heap TopK must return exactly the naive sort-then-truncate
// answer — same rows, same row order — across every join strategy, at
// dop 1/2/4, under both planners, with the memo cold or warm, and with
// the seeded-closure frontier prune on or off. Ties are pinned by the
// total order (sort keys first, remaining columns ascending), so every
// assertion is on exact row sequences, not sorted sets.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/database.h"
#include "api/stages.h"  // white-box stage access
#include "eval/graph_engine.h"
#include "graph/property_graph.h"
#include "query/query_parser.h"
#include "ra/catalog.h"
#include "ra/executor.h"
#include "ra/ra_expr.h"
#include "util/exec_context.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace gqopt {
namespace {

// A pool with enough workers for dop=4 even on single-core CI boxes.
ThreadPool& TestPool() {
  static ThreadPool pool(3);
  return pool;
}

ExecContext At(int dop) {
  ExecContext ctx;
  ctx.dop = dop;
  ctx.parallel_min_rows = 0;  // parallelize regardless of input size
  ctx.pool = &TestPool();
  return ctx;
}

PropertyGraph RandomGraph(size_t nodes, size_t edges_per_label,
                          uint64_t seed) {
  Rng rng(seed);
  PropertyGraph graph;
  for (size_t i = 0; i < nodes; ++i) {
    graph.AddNode(i % 64 == 0 ? "SEED" : "N");
  }
  for (size_t i = 0; i < edges_per_label; ++i) {
    (void)graph.AddEdge(static_cast<NodeId>(rng.Uniform(nodes)), "e1",
                        static_cast<NodeId>(rng.Uniform(nodes)));
    (void)graph.AddEdge(static_cast<NodeId>(rng.Uniform(nodes)), "e2",
                        static_cast<NodeId>(rng.Uniform(nodes)));
  }
  graph.Finalize();
  return graph;
}

std::vector<std::vector<NodeId>> RowsOf(const Table& t) {
  std::vector<std::vector<NodeId>> rows;
  rows.reserve(t.rows());
  size_t arity = t.columns().size();
  for (size_t r = 0; r < t.rows(); ++r) {
    std::vector<NodeId> row(arity);
    for (size_t c = 0; c < arity; ++c) row[c] = t.data()[r * arity + c];
    rows.push_back(std::move(row));
  }
  return rows;
}

// The specification: sort all rows by `keys` (directions respected),
// break ties on the remaining columns ascending, truncate to k.
std::vector<std::vector<NodeId>> NaiveTopK(const Table& t,
                                           const std::vector<SortKey>& keys,
                                           size_t k) {
  std::vector<std::vector<NodeId>> rows = RowsOf(t);
  std::vector<std::pair<size_t, bool>> order;  // (column index, descending)
  std::vector<bool> keyed(t.columns().size(), false);
  for (const SortKey& key : keys) {
    for (size_t c = 0; c < t.columns().size(); ++c) {
      if (t.columns()[c] == key.column) {
        order.emplace_back(c, key.descending);
        keyed[c] = true;
      }
    }
  }
  for (size_t c = 0; c < t.columns().size(); ++c) {
    if (!keyed[c]) order.emplace_back(c, false);
  }
  std::sort(rows.begin(), rows.end(),
            [&order](const std::vector<NodeId>& a,
                     const std::vector<NodeId>& b) {
              for (const auto& [col, desc] : order) {
                if (a[col] != b[col]) {
                  return desc ? a[col] > b[col] : a[col] < b[col];
                }
              }
              return false;
            });
  if (k < rows.size()) rows.resize(k);
  return rows;
}

Table MustRun(const Catalog& catalog, const RaExprPtr& plan,
              const ExecContext& ctx) {
  Executor executor(catalog);
  auto result = executor.Run(plan, ctx);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : Table{};
}

// A two-edge join whose physical strategy is forced; output columns
// (x, y, z). The right side is projection-reordered so hash strategies
// get an unsorted probe input.
RaExprPtr JoinPlan(JoinStrategy strategy) {
  return RaExpr::Join(RaExpr::EdgeScan("e1", "x", "y"),
                      RaExpr::EdgeScan("e2", "y", "z"), strategy);
}

class TopKDifferentialTest : public ::testing::Test {
 protected:
  TopKDifferentialTest()
      : graph_(RandomGraph(500, 2000, 77)), catalog_(graph_) {}

  PropertyGraph graph_;
  Catalog catalog_;
};

TEST_F(TopKDifferentialTest, TopKMatchesNaiveAcrossJoinStrategies) {
  const std::vector<SortKey> keys{{"z", true}, {"x", false}};
  for (JoinStrategy strategy :
       {JoinStrategy::kAuto, JoinStrategy::kOffset,
        JoinStrategy::kMergeSorted, JoinStrategy::kRadixHash,
        JoinStrategy::kFlatHash}) {
    RaExprPtr join = JoinPlan(strategy);
    Table full = MustRun(catalog_, join, At(1));
    ASSERT_GT(full.rows(), 0u);
    const size_t n = full.rows();
    for (size_t k : {size_t{0}, size_t{1}, size_t{7}, n, n + 1}) {
      auto expected = NaiveTopK(full, keys, k);
      Table got = MustRun(catalog_, RaExpr::TopK(join, keys, k), At(1));
      EXPECT_EQ(RowsOf(got), expected)
          << "strategy=" << JoinStrategyName(strategy) << " k=" << k;
      // Limit(Sort(x)) is the unfused logical form of the same query.
      Table unfused = MustRun(
          catalog_, RaExpr::Limit(RaExpr::Sort(join, keys), k), At(1));
      EXPECT_EQ(RowsOf(unfused), expected)
          << "strategy=" << JoinStrategyName(strategy) << " k=" << k;
    }
  }
}

TEST_F(TopKDifferentialTest, BitIdenticalAcrossDop) {
  const std::vector<SortKey> keys{{"y", false}, {"z", true}};
  RaExprPtr plan = RaExpr::TopK(JoinPlan(JoinStrategy::kAuto), keys, 13);
  Table serial = MustRun(catalog_, plan, At(1));
  for (int dop : {2, 4}) {
    Table parallel = MustRun(catalog_, plan, At(dop));
    EXPECT_EQ(serial.columns(), parallel.columns()) << "dop=" << dop;
    EXPECT_EQ(serial.data(), parallel.data()) << "dop=" << dop;
    EXPECT_EQ(serial.sort_prefix(), parallel.sort_prefix()) << "dop=" << dop;
  }
}

TEST_F(TopKDifferentialTest, SortAloneMatchesNaiveFullOrder) {
  const std::vector<SortKey> keys{{"x", true}};
  RaExprPtr join = JoinPlan(JoinStrategy::kAuto);
  Table full = MustRun(catalog_, join, At(1));
  auto expected = NaiveTopK(full, keys, full.rows());
  Table sorted = MustRun(catalog_, RaExpr::Sort(join, keys), At(1));
  EXPECT_EQ(RowsOf(sorted), expected);
  // The output claims its own order: leading key descending.
  EXPECT_GE(sorted.sort_prefix(), 1u);
  EXPECT_TRUE(sorted.sort_descending(0));
}

TEST_F(TopKDifferentialTest, LimitOverOrderedScanIsAPrefix) {
  // EdgeScan output is ordered (src, tgt); Limit must return exactly the
  // first k rows of the unhinted result, including under a limit hint
  // pushed into the scan.
  RaExprPtr scan = RaExpr::EdgeScan("e1", "a", "b");
  Table full = MustRun(catalog_, scan, At(1));
  auto all = RowsOf(full);
  for (size_t k : {size_t{0}, size_t{1}, size_t{50}, full.rows() + 3}) {
    Table got = MustRun(catalog_, RaExpr::Limit(scan, k), At(1));
    auto expected = all;
    if (k < expected.size()) expected.resize(k);
    EXPECT_EQ(RowsOf(got), expected) << "k=" << k;
  }
}

TEST_F(TopKDifferentialTest, DuplicateKeyTieBreakIsDeterministic) {
  // Many rows share the leading key value; a k cutting through the tie
  // group must pick the rows the total order picks, in that order.
  PropertyGraph graph;
  for (int i = 0; i < 40; ++i) graph.AddNode("N");
  // 30 edges out of 8 distinct sources: heavy duplicate groups on x.
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    (void)graph.AddEdge(static_cast<NodeId>(rng.Uniform(8)), "e1",
                        static_cast<NodeId>(rng.Uniform(40)));
  }
  graph.Finalize();
  Catalog catalog(graph);
  RaExprPtr scan = RaExpr::EdgeScan("e1", "x", "y");
  Table full = MustRun(catalog, scan, At(1));
  const std::vector<SortKey> keys{{"x", false}};
  for (size_t k = 1; k <= full.rows(); ++k) {
    auto expected = NaiveTopK(full, keys, k);
    Table got = MustRun(catalog, RaExpr::TopK(scan, keys, k), At(1));
    EXPECT_EQ(RowsOf(got), expected) << "k=" << k;
  }
}

TEST_F(TopKDifferentialTest, WarmMemoMatchesColdExecutor) {
  // A hinted evaluation must never poison the memo: running the TopK
  // first and the bare child second (same executor) must still give the
  // full child result, and a warm second TopK run stays bit-identical.
  const std::vector<SortKey> keys{{"z", false}};
  RaExprPtr join = JoinPlan(JoinStrategy::kFlatHash);
  RaExprPtr topk = RaExpr::TopK(join, keys, 5);

  Table cold_full = MustRun(catalog_, join, At(1));
  Table cold_topk = MustRun(catalog_, topk, At(1));

  Executor warm(catalog_);
  auto first = warm.Run(topk, At(1));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto full_after_hint = warm.Run(join, At(1));
  ASSERT_TRUE(full_after_hint.ok()) << full_after_hint.status().ToString();
  EXPECT_EQ(full_after_hint->data(), cold_full.data());
  auto second = warm.Run(topk, At(1));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->data(), cold_topk.data());
  EXPECT_EQ(first->data(), cold_topk.data());
}

// ---- Seeded-closure frontier prune -----------------------------------------

RaExprPtr SeededClosurePlan() {
  // SEED-labelled sources reach out over e1*: source-seeded closure with
  // output (s, t), fixed side s.
  return RaExpr::TransitiveClosure(RaExpr::EdgeScan("e1", "s", "t"), "s",
                                   "t", RaExpr::NodeScan({"SEED"}, "s"),
                                   SeedSide::kSource);
}

TEST_F(TopKDifferentialTest, ClosureTopKPruneIsInvisibleInResults) {
  RaExprPtr closure = SeededClosurePlan();
  for (bool descending : {false, true}) {
    const std::vector<SortKey> keys{{"s", descending}, {"t", !descending}};
    RaExprPtr topk = RaExpr::TopK(closure, keys, 9);

    ExecContext pruned_ctx = At(1);
    Executor pruned(catalog_);
    auto with_prune = pruned.Run(topk, pruned_ctx);
    ASSERT_TRUE(with_prune.ok()) << with_prune.status().ToString();

    ExecContext unpruned_ctx = At(1);
    unpruned_ctx.topk_pruning = false;
    Executor unpruned(catalog_);
    auto without_prune = unpruned.Run(topk, unpruned_ctx);
    ASSERT_TRUE(without_prune.ok()) << without_prune.status().ToString();

    EXPECT_EQ(with_prune->data(), without_prune->data())
        << "descending=" << descending;
    EXPECT_EQ(unpruned.topk_pruned_frontier(), 0u);
    // The counter measures work actually skipped; on this graph the
    // closure has far more than 9 result pairs, so the prune must bite.
    EXPECT_GT(pruned.topk_pruned_frontier(), 0u)
        << "descending=" << descending;

    // And the pruned result still equals the naive specification.
    Table full = MustRun(catalog_, closure, At(1));
    EXPECT_EQ(RowsOf(*with_prune), NaiveTopK(full, keys, 9));
  }
}

TEST_F(TopKDifferentialTest, ClosureTopKPruneBitIdenticalAcrossDop) {
  const std::vector<SortKey> keys{{"s", false}};
  RaExprPtr topk = RaExpr::TopK(SeededClosurePlan(), keys, 6);
  Table serial = MustRun(catalog_, topk, At(1));
  for (int dop : {2, 4}) {
    Table parallel = MustRun(catalog_, topk, At(dop));
    EXPECT_EQ(serial.data(), parallel.data()) << "dop=" << dop;
  }
}

// ---- Direction-aware sort property (the latent tie-break hole) -------------

TEST_F(TopKDifferentialTest, DescendingOutputDoesNotFakeMergeEligibility) {
  // A descending Sort output claims sort_prefix >= 1 with direction
  // "desc". The merge/offset joins require *ascending* runs; feeding
  // them a descending table silently produced garbage before the
  // direction bit existed. The forced-merge join over a descending
  // input must now fall back and still match the hash answer.
  const std::vector<SortKey> desc_keys{{"y", true}};
  RaExprPtr sorted_desc =
      RaExpr::Sort(RaExpr::EdgeScan("e1", "y", "x"), desc_keys);
  Table t = MustRun(catalog_, sorted_desc, At(1));
  ASSERT_GE(t.sort_prefix(), 1u);
  ASSERT_TRUE(t.sort_descending(0));
  ASSERT_EQ(t.ascending_prefix(), 0u);  // not usable as an ascending run

  RaExprPtr probe = RaExpr::EdgeScan("e2", "y", "z");
  RaExprPtr merged =
      RaExpr::Join(sorted_desc, probe, JoinStrategy::kMergeSorted);
  RaExprPtr hashed = RaExpr::Join(sorted_desc, probe,
                                  JoinStrategy::kFlatHash);
  Table merge_result = MustRun(catalog_, merged, At(1));
  Table hash_result = MustRun(catalog_, hashed, At(1));
  auto canon = [](const Table& t) {
    auto rows = RowsOf(t);
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(canon(merge_result), canon(hash_result));
  EXPECT_GT(merge_result.rows(), 0u);
}

TEST_F(TopKDifferentialTest, AscendingSortOutputStaysMergeEligible) {
  // The fix must not over-correct: a fully ascending Sort output is a
  // legitimate merge input and keeps its sorted() claim.
  const std::vector<SortKey> asc_keys{{"x", false}, {"y", false}};
  RaExprPtr sorted =
      RaExpr::Sort(RaExpr::EdgeScan("e1", "x", "y"), asc_keys);
  Table t = MustRun(catalog_, sorted, At(1));
  EXPECT_TRUE(t.sorted());
  EXPECT_EQ(t.ascending_prefix(), 2u);
}

// ---- Both planners, plan cache on/off, low-memory, via the facade ----------

class TopKFacadeTest : public ::testing::Test {
 protected:
  TopKFacadeTest()
      : db_(GraphSchema(), RandomGraph(400, 1600, 21)) {}

  api::Database db_;
};

TEST_F(TopKFacadeTest, OrderByLimitIdenticalAcrossPlannersAndCache) {
  const std::string text =
      "x, z <- (x, e1/e2, z) order by z desc, x limit 11";
  const std::string unlimited = "x, z <- (x, e1/e2, z)";

  std::vector<std::vector<NodeId>> reference;
  bool have_reference = false;
  for (PlannerKind planner : {PlannerKind::kDp, PlannerKind::kGreedy}) {
    for (bool cache : {false, true}) {
      for (bool low_memory : {false, true}) {
        for (int dop : {1, 2, 4}) {
          api::Session session(db_);
          session.options().planner = planner;
          session.options().use_plan_cache = cache;
          session.options().low_memory = low_memory;
          session.options().dop = dop;
          session.options().parallel_min_rows = 0;
          session.options().apply_schema_rewrite = false;
          auto result = session.Query(text);
          ASSERT_TRUE(result.ok()) << result.status().ToString();
          auto rows = RowsOf(result->table);
          if (!have_reference) {
            reference = rows;
            have_reference = true;
            // Pin against the naive specification once.
            auto full = session.Query(unlimited);
            ASSERT_TRUE(full.ok()) << full.status().ToString();
            EXPECT_EQ(reference,
                      NaiveTopK(full->table,
                                {{"z", true}, {"x", false}}, 11));
          } else {
            EXPECT_EQ(rows, reference)
                << "planner=" << (planner == PlannerKind::kDp ? "dp" : "greedy")
                << " cache=" << cache << " low_memory=" << low_memory
                << " dop=" << dop;
          }
        }
      }
    }
  }
  EXPECT_EQ(reference.size(), 11u);
}

TEST_F(TopKFacadeTest, OffsetWindowIsASliceOfTheOrderedOutput) {
  // `limit N offset M` must return exactly rows [M, M + N) of the full
  // ordered output — across both planners, dop, and the plan cache (the
  // bounded heap keeps N + M candidates, then drops the first M).
  const std::string ordered = "x, z <- (x, e1/e2, z) order by z desc, x";
  api::Session reference_session(db_);
  reference_session.options().apply_schema_rewrite = false;
  auto full = reference_session.Query(ordered);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  auto full_rows = RowsOf(full->table);
  ASSERT_GT(full_rows.size(), 16u);
  std::vector<std::vector<NodeId>> expected(full_rows.begin() + 5,
                                            full_rows.begin() + 16);

  for (PlannerKind planner : {PlannerKind::kDp, PlannerKind::kGreedy}) {
    for (bool cache : {false, true}) {
      for (int dop : {1, 4}) {
        api::Session session(db_);
        session.options().planner = planner;
        session.options().use_plan_cache = cache;
        session.options().dop = dop;
        session.options().parallel_min_rows = 0;
        session.options().apply_schema_rewrite = false;
        auto window = session.Query(ordered + " limit 11 offset 5");
        ASSERT_TRUE(window.ok()) << window.status().ToString();
        EXPECT_EQ(RowsOf(window->table), expected)
            << "planner=" << (planner == PlannerKind::kDp ? "dp" : "greedy")
            << " cache=" << cache << " dop=" << dop;
      }
    }
  }

  // An offset past the end of the output is an empty window, not an
  // error; a window straddling the end truncates.
  api::Session session(db_);
  session.options().apply_schema_rewrite = false;
  auto past = session.Query(
      ordered + " limit 5 offset " + std::to_string(full_rows.size()));
  ASSERT_TRUE(past.ok()) << past.status().ToString();
  EXPECT_EQ(past->rows(), 0u);
  auto straddle = session.Query(
      ordered + " limit 10 offset " + std::to_string(full_rows.size() - 3));
  ASSERT_TRUE(straddle.ok()) << straddle.status().ToString();
  EXPECT_EQ(straddle->rows(), 3u);
}

TEST_F(TopKFacadeTest, GraphEngineAgreesOnOrderedQueries) {
  // The paper's second engine evaluates the same UCQT directly on the
  // graph; an ordered query must come back as the identical ordered
  // prefix (it used to ignore order by / limit entirely, so the CLI's
  // three-way differential disagreed on row counts).
  api::Session session(db_);
  session.options().apply_schema_rewrite = false;
  for (const std::string text :
       {std::string("x, y <- (x, e1, y) order by y desc, x limit 7"),
        std::string(
            "x, y <- (x, e1, y) order by y desc, x limit 7 offset 4")}) {
    SCOPED_TRACE(text);
    auto relational = session.Query(text);
    ASSERT_TRUE(relational.ok()) << relational.status().ToString();

    auto query = ParseUcqt(text);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    GraphEngine engine(db_.graph());
    auto graph_result = engine.Run(*query);
    ASSERT_TRUE(graph_result.ok()) << graph_result.status().ToString();
    EXPECT_EQ(graph_result->rows, RowsOf(relational->table));
  }
}

TEST_F(TopKFacadeTest, PlanCacheDistinguishesOrderAndBound) {
  // Same body, different order/limit suffix: must be distinct cache
  // entries (no false hit serving the wrong k or keys).
  api::Session session(db_);
  session.options().use_plan_cache = true;
  session.options().apply_schema_rewrite = false;
  auto a = session.Query("x, y <- (x, e1, y) order by y limit 3");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = session.Query("x, y <- (x, e1, y) order by y limit 5");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  auto c = session.Query("x, y <- (x, e1, y) order by y desc limit 3");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(a->rows(), 3u);
  EXPECT_EQ(b->rows(), 5u);
  EXPECT_EQ(c->rows(), 3u);
  EXPECT_NE(RowsOf(a->table), RowsOf(c->table));
  // b's first 3 rows are exactly a.
  auto b_rows = RowsOf(b->table);
  b_rows.resize(3);
  EXPECT_EQ(RowsOf(a->table), b_rows);
}

}  // namespace
}  // namespace gqopt

// Cost-based DP join enumerator tests (src/ra/planner/):
//  - DP-vs-greedy differential: identical result sets on the LDBC and
//    YAGO workloads, and DP plan cost never above greedy plan cost on
//    closure-free join clusters (greedy's left-deep connected trees are a
//    subset of DP's search space under the shared cost model);
//  - interesting orders: a cluster where greedy's cardinality-driven
//    order destroys the sorted prefix and hashes, while DP keeps the
//    order alive for a merge join;
//  - estimator accuracy: q-error bounds on executed workload joins
//    (EXPLAIN analyze's rows = est/actual, asserted programmatically);
//  - planner knobs: greedy fallback on an expired planning deadline and
//    above the DP cluster-size cutoff.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "datasets/ldbc.h"
#include "eval/aggregate.h"
#include "datasets/workloads.h"
#include "datasets/yago.h"
#include "query/query_parser.h"
#include "ra/catalog.h"
#include "ra/executor.h"
#include "ra/explain.h"
#include "api/stages.h"  // white-box stage access
#include "ra/planner/dp_enumerator.h"
#include "test_fixtures.h"
#include "util/rng.h"

namespace gqopt {
namespace {

OptimizerOptions DpOptions() {
  OptimizerOptions options;
  options.planner = PlannerKind::kDp;
  return options;
}

OptimizerOptions GreedyOptions() {
  OptimizerOptions options;
  options.planner = PlannerKind::kGreedy;
  return options;
}

// The interesting-order scenario: two identical-shaped "big" relations
// over the same columns (merge-joinable) plus one small connector. The
// greedy pass starts from the small relation (cheapest first), which
// buries the shared columns mid-row and forces a hash join; DP keeps
// big1 |><| big2 sorted on (a, b) and merges.
PropertyGraph OrderScenarioGraph(size_t nodes, size_t big, size_t small) {
  Rng rng(7);
  PropertyGraph g;
  for (size_t i = 0; i < nodes; ++i) g.AddNode("N");
  for (size_t i = 0; i < big; ++i) {
    NodeId a = static_cast<NodeId>(rng.Uniform(nodes));
    NodeId b = static_cast<NodeId>(rng.Uniform(nodes));
    (void)g.AddEdge(a, "big1", b);
    (void)g.AddEdge(a, "big2", b);
  }
  for (size_t i = 0; i < small; ++i) {
    (void)g.AddEdge(static_cast<NodeId>(rng.Uniform(nodes)), "small",
                    static_cast<NodeId>(rng.Uniform(nodes)));
  }
  g.Finalize();
  return g;
}

RaExprPtr OrderScenarioCluster() {
  return RaExpr::Join(
      RaExpr::Join(RaExpr::EdgeScan("small", "b", "c"),
                   RaExpr::EdgeScan("big1", "a", "b")),
      RaExpr::EdgeScan("big2", "a", "b"));
}

// Reorders columns alphabetically and sort-distincts the rows, so result
// sets compare independently of the join order's column layout.
Table Canonical(const Table& t) {
  std::vector<std::string> cols = t.columns();
  std::sort(cols.begin(), cols.end());
  std::vector<int> sources;
  for (const std::string& col : cols) sources.push_back(t.ColumnIndex(col));
  std::vector<NodeId> data;
  data.reserve(t.data().size());
  for (size_t r = 0; r < t.rows(); ++r) {
    for (int src : sources) data.push_back(t.Row(r)[src]);
  }
  Table out = Table::FromData(cols, std::move(data));
  out.SortDistinct();
  return out;
}

const RaExpr* TopJoin(const RaExprPtr& plan) {
  const RaExpr* e = plan.get();
  while (e != nullptr && e->op() != RaOp::kJoin) e = e->left().get();
  return e;
}

TEST(PlannerTest, DpRetainsSortedOrderForDownstreamMergeJoin) {
  PropertyGraph graph = OrderScenarioGraph(1000, 4000, 1000);
  Catalog catalog(graph);
  RaExprPtr cluster = OrderScenarioCluster();

  RaExprPtr dp = OptimizePlan(cluster, catalog, DpOptions());
  RaExprPtr greedy = OptimizePlan(cluster, catalog, GreedyOptions());
  std::string dp_explain = ExplainPlan(dp, catalog);
  std::string greedy_explain = ExplainPlan(greedy, catalog);

  // Greedy hashes (no order survives its start); DP merges.
  EXPECT_EQ(greedy_explain.find("[merge]"), std::string::npos)
      << greedy_explain;
  EXPECT_NE(greedy_explain.find("-hash"), std::string::npos)
      << greedy_explain;
  EXPECT_NE(dp_explain.find("[merge]"), std::string::npos) << dp_explain;

  // Same cost model: the DP winner can never cost more than the greedy
  // tree, which is inside DP's search space.
  Estimator estimator(catalog);
  EXPECT_LE(estimator.Estimate(TopJoin(dp)).cost,
            estimator.Estimate(TopJoin(greedy)).cost * (1 + 1e-9));

  // And both plans compute the same relation.
  Executor executor(catalog);
  auto dp_result = executor.Run(dp);
  auto greedy_result = executor.Run(greedy);
  ASSERT_TRUE(dp_result.ok());
  ASSERT_TRUE(greedy_result.ok());
  Table a = Canonical(*dp_result);
  Table b = Canonical(*greedy_result);
  EXPECT_EQ(a.columns(), b.columns());
  EXPECT_EQ(a.data(), b.data());
}

TEST(PlannerTest, DpCostNeverExceedsGreedyOnClosureFreeClusters) {
  PropertyGraph graph = GenerateYago({.persons = 400, .seed = 11});
  Catalog catalog(graph);
  // Closure-free chain/star/cycle clusters over YAGO relations.
  const std::vector<std::vector<RaExprPtr>> clusters = {
      {RaExpr::EdgeScan("owns", "x", "y"),
       RaExpr::EdgeScan("isLocatedIn", "y", "z"),
       RaExpr::EdgeScan("isLocatedIn", "z", "w")},
      {RaExpr::EdgeScan("livesIn", "x", "c"),
       RaExpr::EdgeScan("isLocatedIn", "c", "r"),
       RaExpr::EdgeScan("dealsWith", "r", "r2"),
       RaExpr::EdgeScan("isMarriedTo", "x", "p")},
      {RaExpr::EdgeScan("owns", "x", "y"),
       RaExpr::EdgeScan("livesIn", "x", "c"),
       RaExpr::EdgeScan("isLocatedIn", "y", "c")},
  };
  for (const auto& rels : clusters) {
    RaExprPtr plan = rels[0];
    for (size_t i = 1; i < rels.size(); ++i) {
      plan = RaExpr::Join(plan, rels[i]);
    }
    RaExprPtr dp = OptimizePlan(plan, catalog, DpOptions());
    RaExprPtr greedy = OptimizePlan(plan, catalog, GreedyOptions());
    Estimator estimator(catalog);
    EXPECT_LE(estimator.Estimate(TopJoin(dp)).cost,
              estimator.Estimate(TopJoin(greedy)).cost * (1 + 1e-9))
        << ExplainPlan(dp, catalog) << "\nvs greedy\n"
        << ExplainPlan(greedy, catalog);
  }
}

void CheckDifferential(const Catalog& catalog,
                       const std::vector<WorkloadQuery>& workload,
                       size_t limit) {
  size_t checked = 0;
  for (const WorkloadQuery& wq : workload) {
    if (checked >= limit) break;
    auto query = ParseWorkloadQuery(wq);
    ASSERT_TRUE(query.ok()) << wq.id;
    auto plan = UcqtToRa(*query);
    ASSERT_TRUE(plan.ok()) << wq.id;
    Executor executor(catalog);
    auto dp = executor.Run(OptimizePlan(*plan, catalog, DpOptions()));
    auto greedy =
        executor.Run(OptimizePlan(*plan, catalog, GreedyOptions()));
    ASSERT_TRUE(dp.ok()) << wq.id << ": " << dp.status().ToString();
    ASSERT_TRUE(greedy.ok()) << wq.id << ": "
                             << greedy.status().ToString();
    Table a = *dp;
    Table b = *greedy;
    a.SortDistinct();
    b.SortDistinct();
    EXPECT_EQ(a.data(), b.data()) << wq.id;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(PlannerTest, DpMatchesGreedyOnYagoWorkload) {
  PropertyGraph graph = GenerateYago({.persons = 250, .seed = 5});
  Catalog catalog(graph);
  CheckDifferential(catalog, YagoWorkload(), 10);
}

TEST(PlannerTest, DpMatchesGreedyOnLdbcWorkload) {
  PropertyGraph graph = GenerateLdbc({.persons = 120, .seed = 5});
  Catalog catalog(graph);
  CheckDifferential(catalog, LdbcWorkload(), 10);
}

// q-errors of the executed kJoin nodes of a plan (est vs actual).
void CollectJoinQErrors(
    const RaExpr* e, Estimator* estimator,
    const std::unordered_map<const RaExpr*, size_t>& actual,
    std::vector<double>* qs) {
  if (e == nullptr) return;
  if (e->op() == RaOp::kJoin) {
    auto it = actual.find(e);
    if (it != actual.end()) {
      double est = std::max(1.0, estimator->Estimate(e).rows);
      double act = std::max<double>(1.0, static_cast<double>(it->second));
      qs->push_back(std::max(est, act) / std::min(est, act));
    }
  }
  CollectJoinQErrors(e->left().get(), estimator, actual, qs);
  if (e->right()) {
    CollectJoinQErrors(e->right().get(), estimator, actual, qs);
  }
}

// Asserts the estimator's q-error over the executed joins of the first
// `limit` workload queries: a tight bound on the geometric mean (typical
// estimates are good) and a looser per-join cap (independence
// assumptions carry no skew statistics). The Estimator is constructed
// per query: its memo is keyed by node pointer, so it must never outlive
// the plan it estimated (freed nodes alias fresh allocations).
void CheckQError(const Catalog& catalog,
                 const std::vector<WorkloadQuery>& workload, size_t limit,
                 double geomean_bound, double max_bound) {
  std::vector<double> qs;
  size_t checked = 0;
  for (const WorkloadQuery& wq : workload) {
    if (checked >= limit) break;
    auto query = ParseWorkloadQuery(wq);
    ASSERT_TRUE(query.ok()) << wq.id;
    auto plan = UcqtToRa(*query);
    ASSERT_TRUE(plan.ok()) << wq.id;
    RaExprPtr optimized = OptimizePlan(*plan, catalog, DpOptions());
    Estimator estimator(catalog);
    Executor executor(catalog);
    auto table = executor.Run(optimized);
    ASSERT_TRUE(table.ok()) << wq.id;
    size_t before = qs.size();
    CollectJoinQErrors(optimized.get(), &estimator, executor.actual_rows(),
                       &qs);
    for (size_t i = before; i < qs.size(); ++i) {
      EXPECT_LE(qs[i], max_bound)
          << wq.id << "\n"
          << ExplainPlanAnalyze(optimized, catalog, executor.actual_rows());
    }
    ++checked;
  }
  ASSERT_GT(qs.size(), 0u);
  double log_sum = 0;
  for (double q : qs) log_sum += std::log(q);
  double geomean = std::exp(log_sum / static_cast<double>(qs.size()));
  EXPECT_LE(geomean, geomean_bound);
}

TEST(PlannerTest, EstimatorQErrorBoundedOnLdbcJoins) {
  PropertyGraph graph = GenerateLdbc({.persons = 150, .seed = 3});
  Catalog catalog(graph);
  CheckQError(catalog, LdbcWorkload(), 8, /*geomean_bound=*/8.0,
              /*max_bound=*/64.0);
}

TEST(PlannerTest, EstimatorQErrorBoundedOnYagoJoins) {
  PropertyGraph graph = GenerateYago({.persons = 300, .seed = 3});
  Catalog catalog(graph);
  CheckQError(catalog, YagoWorkload(), 8, /*geomean_bound=*/8.0,
              /*max_bound=*/64.0);
}

TEST(PlannerTest, ExplainAnalyzeShowsEstimatedAndActualRows) {
  PropertyGraph graph = testing::Fig2Graph();
  Catalog catalog(graph);
  RaExprPtr plan =
      OptimizePlan(RaExpr::Join(RaExpr::EdgeScan("owns", "x", "z"),
                                RaExpr::EdgeScan("isLocatedIn", "z", "y")),
                   catalog, DpOptions());
  Executor executor(catalog);
  ASSERT_TRUE(executor.Run(plan).ok());
  std::string analyze =
      ExplainPlanAnalyze(plan, catalog, executor.actual_rows());
  // Scan estimates are exact, so est/actual agree: "rows = 1/1".
  EXPECT_NE(analyze.find("rows = 1/1"), std::string::npos) << analyze;
  EXPECT_NE(analyze.find("rows = 4/4"), std::string::npos) << analyze;
  // Plain EXPLAIN stays est-only.
  std::string plain = ExplainPlan(plan, catalog);
  EXPECT_EQ(plain.find("/"), std::string::npos) << plain;
}

TEST(PlannerTest, ExpiredPlanningDeadlineFallsBackToGreedy) {
  PropertyGraph graph = OrderScenarioGraph(1000, 4000, 1000);
  Catalog catalog(graph);
  OptimizerOptions expired = DpOptions();
  expired.planning_deadline = Deadline::AfterMillis(1);
  while (!expired.planning_deadline.Expired()) {
  }
  RaExprPtr fallback =
      OptimizePlan(OrderScenarioCluster(), catalog, expired);
  RaExprPtr greedy =
      OptimizePlan(OrderScenarioCluster(), catalog, GreedyOptions());
  EXPECT_EQ(ExplainPlan(fallback, catalog), ExplainPlan(greedy, catalog));
}

TEST(PlannerTest, ClustersAboveCutoffFallBackToGreedy) {
  PropertyGraph graph = OrderScenarioGraph(1000, 4000, 1000);
  Catalog catalog(graph);
  OptimizerOptions tiny_cutoff = DpOptions();
  tiny_cutoff.dp_max_relations = 2;
  RaExprPtr capped =
      OptimizePlan(OrderScenarioCluster(), catalog, tiny_cutoff);
  RaExprPtr greedy =
      OptimizePlan(OrderScenarioCluster(), catalog, GreedyOptions());
  EXPECT_EQ(ExplainPlan(capped, catalog), ExplainPlan(greedy, catalog));
}

TEST(PlannerTest, DpPlansTenRelationChainUnderCutoff) {
  // A 10-relation chain — the DP cutoff boundary; the planner must stay
  // exact (connected enumeration) and return an annotated tree.
  Rng rng(13);
  PropertyGraph g;
  for (size_t i = 0; i < 500; ++i) g.AddNode("N");
  for (int rel = 0; rel < 10; ++rel) {
    std::string label = "e" + std::to_string(rel);
    for (size_t i = 0; i < 2000; ++i) {
      (void)g.AddEdge(static_cast<NodeId>(rng.Uniform(500)), label,
                      static_cast<NodeId>(rng.Uniform(500)));
    }
  }
  g.Finalize();
  Catalog catalog(g);
  RaExprPtr plan = RaExpr::EdgeScan("e0", "c0", "c1");
  for (int rel = 1; rel < 10; ++rel) {
    plan = RaExpr::Join(
        plan, RaExpr::EdgeScan("e" + std::to_string(rel),
                               "c" + std::to_string(rel),
                               "c" + std::to_string(rel + 1)));
  }
  RaExprPtr dp = OptimizePlan(plan, catalog, DpOptions());
  ASSERT_NE(dp, nullptr);
  // The chain is fully connected: no cross products in the DP tree.
  std::function<void(const RaExpr*)> check = [&](const RaExpr* e) {
    if (e == nullptr) return;
    if (e->op() == RaOp::kJoin) {
      EXPECT_FALSE(SharedColumns(*e->left(), *e->right()).empty());
    }
    check(e->left().get());
    check(e->right().get());
  };
  check(dp.get());
  // DP cost is still bounded by greedy's.
  Estimator estimator(catalog);
  RaExprPtr greedy = OptimizePlan(plan, catalog, GreedyOptions());
  EXPECT_LE(estimator.Estimate(TopJoin(dp)).cost,
            estimator.Estimate(TopJoin(greedy)).cost * (1 + 1e-9));
}

TEST(PlannerTest, AggregateLoopsHonorDeadline) {
  // 1 << 17 rows: enough for the amortized DeadlinePoller (2^16 stride)
  // to consult the clock at least once inside the grouping loop.
  std::vector<NodeId> data;
  data.reserve(size_t{1} << 17);
  for (size_t i = 0; i < (size_t{1} << 17); ++i) {
    data.push_back(static_cast<NodeId>(i));
  }
  Table table = Table::FromData({"x"}, std::move(data));
  Deadline expired = Deadline::AfterMillis(1);
  while (!expired.Expired()) {
  }
  auto result = CountByGroup(table, {"x"}, expired);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace gqopt

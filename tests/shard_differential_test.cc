// Differential tests for sharded graph storage (src/shard/): executing
// against a K-way partition — per-shard CSR runs, shard-parallel core
// fan-out, and frontier-exchange closures — must be BIT-IDENTICAL (same
// columns, same rows, same row order) to unsharded execution, across
// K in {2, 4}, both partitioning policies, both planners, dop 1 and 4,
// plan cache on/off, low-memory mode, the delta overlay (pending rows
// routed to their owning shard per query), mid-delta mutation streams,
// and under injected shard-exchange faults (typed, retryable statuses;
// every surviving run still bit-identical). Plus partitioner unit tests
// (totality over delta ids, empty shards, K = 1, all-crossing edges) and
// the field-by-field MergedEdgeStats recombination contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/database.h"
#include "datasets/yago.h"
#include "graph/property_graph.h"
#include "shard/partitioner.h"
#include "shard/sharded_graph.h"
#include "stats/graph_stats.h"
#include "util/fault_injection.h"

namespace gqopt {
namespace {

using api::Database;
using api::ExecOptions;
using api::Session;

// The same mutation batch as the delta differential suite: new persons
// marry into the base graph and acquire property chains, so closures and
// joins extend across both the base/delta boundary and — under a
// partition — shard boundaries (fresh delta ids are routed through the
// partitioner, never re-partitioned).
void ApplyMutations(Database& db) {
  std::vector<NodeId> persons, properties;
  for (int i = 0; i < 6; ++i) persons.push_back(db.AddNode("PERSON"));
  for (int i = 0; i < 4; ++i) properties.push_back(db.AddNode("PROPERTY"));
  NodeId city = db.AddNode("CITY");
  for (size_t i = 0; i + 1 < persons.size(); ++i) {
    ASSERT_TRUE(db.AddEdge(persons[i], "isMarriedTo", persons[i + 1]).ok());
  }
  ASSERT_TRUE(db.AddEdge(0, "isMarriedTo", persons[0]).ok());
  ASSERT_TRUE(db.AddEdge(persons.back(), "hasChild", persons[0]).ok());
  for (size_t i = 0; i < properties.size(); ++i) {
    ASSERT_TRUE(db.AddEdge(persons[i], "owns", properties[i]).ok());
    ASSERT_TRUE(db.AddEdge(properties[i], "isLocatedIn", city).ok());
  }
  ASSERT_TRUE(db.AddEdge(persons[0], "livesIn", city).ok());
}

const char* const kQueries[] = {
    // Single-scan core: the driver fan-out path (one shard per slice of
    // the scanned label, results unioned under the Distinct).
    "x1, x2 <- (x1, owns, x2)",
    // Flat composition: fan-out drives on the rarer label.
    "x1, x2 <- (x1, owns/isLocatedIn, x2)",
    // Unseeded closure: per-shard fixpoints with frontier exchange.
    "x1, x2 <- (x1, isMarriedTo+, x2)",
    // Seeded closure behind a join.
    "x1, x2 <- (x1, owns/isLocatedIn+, x2)",
    // Union with a closure branch.
    "x1, x2 <- (x1, isMarriedTo+/hasChild, x2) ++ (x1, livesIn, x2)",
    // Ordered operators with early termination over a sharded run.
    "x, y <- (x, isMarriedTo/hasChild, y) order by y desc, x limit 9",
    // The pagination window: rows [3, 9) of the ordered output.
    "x, y <- (x, owns/isLocatedIn, y) order by y, x desc limit 6 offset 3",
};

// Runs `query` on both sessions and asserts raw row-major storage
// equality: rows AND row order.
void ExpectIdentical(Session& sharded, Session& unsharded,
                     const char* query) {
  auto live = sharded.Query(query);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  auto flat = unsharded.Query(query);
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  EXPECT_EQ(live->table.columns(), flat->table.columns());
  EXPECT_EQ(live->table.data(), flat->table.data());
}

TEST(ShardDifferentialTest, ShardedIsBitIdenticalToUnsharded) {
  Database unsharded(YagoSchema(), GenerateYago({.persons = 60, .seed = 9}));
  unsharded.set_shards(1);
  Database sharded(YagoSchema(), GenerateYago({.persons = 60, .seed = 9}));

  for (int shards : {2, 4}) {
    for (shard::ShardPolicy policy :
         {shard::ShardPolicy::kHash, shard::ShardPolicy::kRange}) {
      sharded.set_shards(shards, policy);
      ASSERT_NE(sharded.snapshot()->sharded(), nullptr);
      for (PlannerKind planner : {PlannerKind::kDp, PlannerKind::kGreedy}) {
        for (int dop : {1, 4}) {
          for (bool cache : {false, true}) {
            for (bool low_memory : {false, true}) {
              ExecOptions options;
              options.planner = planner;
              options.dop = dop;
              options.use_plan_cache = cache;
              options.low_memory = low_memory;
              options.timeout_ms = 0;  // correctness sweep, no deadline
              ExecOptions flat_options = options;
              flat_options.shards = 0;  // belt and braces: session opt-out
              Session sharded_session(sharded, options);
              Session unsharded_session(unsharded, flat_options);
              for (const char* query : kQueries) {
                SCOPED_TRACE(
                    std::string(query) + " K=" + std::to_string(shards) +
                    " policy=" + shard::ShardPolicyName(policy) +
                    " planner=" +
                    (planner == PlannerKind::kDp ? "dp" : "greedy") +
                    " dop=" + std::to_string(dop) + " cache=" +
                    std::to_string(cache) + " low_mem=" +
                    std::to_string(low_memory));
                ExpectIdentical(sharded_session, unsharded_session, query);
              }
            }
          }
        }
      }
    }
  }
}

TEST(ShardDifferentialTest, SessionShardsFieldForcesUnshardedExecution) {
  // options.shards = 0 on a partitioned database must take the plain
  // executor path — observable through EXPLAIN ANALYZE, which only
  // prints the shard layout line when the sharded executor ran.
  Database db(YagoSchema(), GenerateYago({.persons = 30, .seed = 5}));
  db.set_shards(4);
  ExecOptions opt_out;
  opt_out.shards = 0;
  Session off(db, opt_out);
  auto prepared = off.Prepare("x1, x2 <- (x1, owns, x2)");
  ASSERT_TRUE(prepared.ok());
  auto rendered = (*prepared)->ExplainAnalyze(off);
  ASSERT_TRUE(rendered.ok());
  EXPECT_EQ(rendered->find("[shards="), std::string::npos) << *rendered;

  Session on(db);  // default options inherit the database's partition
  auto inherit = on.Prepare("x1, x2 <- (x1, owns, x2)");
  ASSERT_TRUE(inherit.ok());
  auto analyzed = (*inherit)->ExplainAnalyze(on);
  ASSERT_TRUE(analyzed.ok());
  EXPECT_NE(analyzed->find("[shards=4"), std::string::npos) << *analyzed;
  EXPECT_NE((*inherit)->Explain().find("[shards=4"), std::string::npos);
}

TEST(ShardDifferentialTest, DeltaOverlayRoutesToOwningShards) {
  // Pending rows stay in the delta (threshold far above the batch);
  // sharded execution must route every pending edge to its owning shard
  // and still match the unsharded overlay bit-for-bit — including after
  // compaction folds the rows into the base partition.
  for (shard::ShardPolicy policy :
       {shard::ShardPolicy::kHash, shard::ShardPolicy::kRange}) {
    SCOPED_TRACE(shard::ShardPolicyName(policy));
    Database unsharded(YagoSchema(),
                       GenerateYago({.persons = 60, .seed = 9}));
    unsharded.set_shards(1);
    unsharded.set_delta_enabled(true);
    unsharded.set_delta_merge_rows(1u << 20);
    Database sharded(YagoSchema(), GenerateYago({.persons = 60, .seed = 9}));
    sharded.set_shards(4, policy);
    sharded.set_delta_enabled(true);
    sharded.set_delta_merge_rows(1u << 20);

    Session sharded_session(sharded);
    Session unsharded_session(unsharded);

    // Mid-delta: interleave queries with the mutation stream.
    for (const char* query : kQueries) {
      ExpectIdentical(sharded_session, unsharded_session, query);
    }
    ApplyMutations(sharded);
    ApplyMutations(unsharded);
    ASSERT_GT(sharded.delta_stats().pending_edges, 0u);
    for (const char* query : kQueries) {
      SCOPED_TRACE(std::string("overlay: ") + query);
      ExpectIdentical(sharded_session, unsharded_session, query);
    }
    ASSERT_TRUE(sharded.Compact().ok());
    ASSERT_TRUE(unsharded.Compact().ok());
    for (const char* query : kQueries) {
      SCOPED_TRACE(std::string("compacted: ") + query);
      ExpectIdentical(sharded_session, unsharded_session, query);
    }
  }
}

// ---- shard-exchange fault injection ----------------------------------------

class ShardExchangeFaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().ResetCounters();
  }
};

TEST_F(ShardExchangeFaultTest, InjectedFaultsSurfaceTypedStatuses) {
  Database db(YagoSchema(), GenerateYago({.persons = 60, .seed = 9}));
  db.set_shards(4);
  Session session(db);
  const char* closure = "x1, x2 <- (x1, isMarriedTo+, x2)";

  // A run with no faults armed: the baseline rows.
  auto baseline = session.Query(closure);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  FaultInjector::Global().Arm(FaultPoint::kShardExchange,
                              FaultKind::kDeadline);
  auto expired = session.Query(closure);
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded)
      << expired.status().ToString();
  EXPECT_NE(expired.status().message().find("shard frontier exchange"),
            std::string::npos)
      << expired.status().ToString();

  FaultInjector::Global().Arm(FaultPoint::kShardExchange, FaultKind::kAlloc);
  auto starved = session.Query(closure);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kResourceExhausted)
      << starved.status().ToString();
  EXPECT_NE(starved.status().message().find("resource"), std::string::npos);

  // Disarm: the very next run recovers and is bit-identical again — the
  // fault left no partial state behind (per-query executor instances).
  FaultInjector::Global().DisarmAll();
  auto recovered = session.Query(closure);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->table.data(), baseline->table.data());
}

TEST_F(ShardExchangeFaultTest, SurvivingRunsStayBitIdenticalUnderStorm) {
  // Every n-th exchange round fails; runs that dodge the stride must
  // still return exactly the unsharded answer — a fault either surfaces
  // as a typed status or changes nothing.
  Database sharded(YagoSchema(), GenerateYago({.persons = 60, .seed = 9}));
  sharded.set_shards(4);
  Database unsharded(YagoSchema(), GenerateYago({.persons = 60, .seed = 9}));
  unsharded.set_shards(1);
  Session sharded_session(sharded);
  Session unsharded_session(unsharded);
  const char* closure = "x1, x2 <- (x1, isMarriedTo+, x2)";
  auto expected = unsharded_session.Query(closure);
  ASSERT_TRUE(expected.ok());

  // Measure how many exchange rounds one run probes (arming with a
  // stride far past reach keeps the run clean while the probe counter
  // ticks), then set the storm stride to rounds + 1: each run's probe
  // window is one short of the stride, so fires drift across runs —
  // deterministically mixing surviving and failing executions.
  FaultInjector::Global().Arm(FaultPoint::kShardExchange,
                              FaultKind::kDeadline, /*every_n=*/1u << 30);
  ASSERT_TRUE(sharded_session.Query(closure).ok());
  auto rounds = static_cast<uint32_t>(
      FaultInjector::Global().probes(FaultPoint::kShardExchange));
  ASSERT_GT(rounds, 0u) << "closure did not take the exchange path";
  FaultInjector::Global().ResetCounters();
  FaultInjector::Global().Arm(FaultPoint::kShardExchange,
                              FaultKind::kDeadline, /*every_n=*/rounds + 1);
  int survived = 0;
  int failed = 0;
  for (int i = 0; i < 20; ++i) {
    auto run = sharded_session.Query(closure);
    if (run.ok()) {
      ++survived;
      EXPECT_EQ(run->table.data(), expected->table.data());
    } else {
      ++failed;
      EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded)
          << run.status().ToString();
    }
  }
  EXPECT_GT(survived, 0);
  EXPECT_GT(failed, 0);
  EXPECT_GT(FaultInjector::Global().fires(FaultPoint::kShardExchange), 0u);
}

// ---- partitioner unit tests ------------------------------------------------

TEST(PartitionerTest, SingleShardOwnsEverything) {
  shard::ShardSpec spec;
  spec.shards = 1;
  ASSERT_FALSE(spec.active());
  shard::Partitioner one(spec, 100);
  for (NodeId node : {NodeId{0}, NodeId{37}, NodeId{99}, NodeId{100000}}) {
    EXPECT_EQ(one.ShardOf(node), 0);
  }
}

TEST(PartitionerTest, TotalOverDeltaIdsUnderBothPolicies) {
  // Ids minted after the partition was built (pending delta nodes past
  // the base id space) must still map into [0, K) — range clamps to the
  // last shard, hash mixes like any base id.
  for (shard::ShardPolicy policy :
       {shard::ShardPolicy::kRange, shard::ShardPolicy::kHash}) {
    shard::ShardSpec spec;
    spec.shards = 4;
    spec.policy = policy;
    shard::Partitioner partitioner(spec, 50);
    for (uint32_t node = 0; node < 500; ++node) {
      int s = partitioner.ShardOf(node);
      EXPECT_GE(s, 0);
      EXPECT_LT(s, 4);
    }
    // Deterministic across instances: a second partitioner over the same
    // spec maps every id identically (persisted expectations hold).
    shard::Partitioner again(spec, 50);
    for (uint32_t node = 0; node < 100; ++node) {
      EXPECT_EQ(partitioner.ShardOf(node), again.ShardOf(node));
    }
  }
  shard::ShardSpec range;
  range.shards = 4;
  range.policy = shard::ShardPolicy::kRange;
  shard::Partitioner partitioner(range, 40);  // chunk = 10
  EXPECT_EQ(partitioner.ShardOf(0), 0);
  EXPECT_EQ(partitioner.ShardOf(39), 3);
  EXPECT_EQ(partitioner.ShardOf(40), 3) << "delta ids clamp to last shard";
  EXPECT_EQ(partitioner.ShardOf(4000), 3);
}

TEST(PartitionerTest, MoreShardsThanNodesLeavesEmptyShards) {
  // K far above the node count: range gives each node its own shard and
  // leaves the rest empty; both policies stay total and in range.
  shard::ShardSpec spec;
  spec.shards = 8;
  spec.policy = shard::ShardPolicy::kRange;
  shard::Partitioner partitioner(spec, 3);  // chunk = max(1, 3/8) = 1
  EXPECT_EQ(partitioner.ShardOf(0), 0);
  EXPECT_EQ(partitioner.ShardOf(1), 1);
  EXPECT_EQ(partitioner.ShardOf(2), 2);
  // Shards 3..7 own no base node; a graph partitioned this way still
  // builds, with empty runs for the tail shards.
  PropertyGraph tiny;
  tiny.AddNode("N");
  tiny.AddNode("N");
  tiny.AddNode("N");
  ASSERT_TRUE(tiny.AddEdge(0, "e", 1).ok());
  ASSERT_TRUE(tiny.AddEdge(1, "e", 2).ok());
  tiny.Finalize();
  auto sharded = shard::ShardedGraph::Build(tiny, spec, nullptr);
  ASSERT_NE(sharded, nullptr);
  for (int k = 3; k < 8; ++k) {
    EXPECT_TRUE(sharded->RunsFor(k, "e").forward.empty());
    EXPECT_TRUE(sharded->RunsFor(k, "e").reverse.empty());
  }
  EXPECT_EQ(sharded->RunsFor(0, "e").forward.size(), 1u);
  EXPECT_EQ(sharded->RunsFor(1, "e").forward.size(), 1u);
}

TEST(ShardedGraphTest, PathGraphUnderUnitRangeIsAllCrossing) {
  // A path 0 -> 1 -> ... -> n under range with chunk 1: every edge's
  // endpoints live on different shards, so the whole edge table is in
  // the crossing index (the frontier exchange ships everything).
  PropertyGraph path;
  const int n = 8;
  for (int i = 0; i < n; ++i) path.AddNode("N");
  for (int i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(path.AddEdge(i, "next", i + 1).ok());
  }
  path.Finalize();
  shard::ShardSpec spec;
  spec.shards = n;
  spec.policy = shard::ShardPolicy::kRange;
  auto sharded = shard::ShardedGraph::Build(path, spec, nullptr);
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->crossing_edges(), path.num_edges());
  size_t forward_total = 0;
  size_t reverse_total = 0;
  for (int k = 0; k < n; ++k) {
    forward_total += sharded->RunsFor(k, "next").forward.size();
    reverse_total += sharded->RunsFor(k, "next").reverse.size();
    EXPECT_EQ(sharded->RunsFor(k, "next").crossing.size(),
              sharded->RunsFor(k, "next").forward.size());
  }
  // The forward runs PARTITION the edge table; so do the reverse runs.
  EXPECT_EQ(forward_total, path.num_edges());
  EXPECT_EQ(reverse_total, path.num_edges());
}

TEST(ShardedGraphTest, InactiveSpecBuildsNothing) {
  PropertyGraph graph = GenerateYago({.persons = 10, .seed = 3});
  shard::ShardSpec off;
  off.shards = 1;
  EXPECT_EQ(shard::ShardedGraph::Build(graph, off, nullptr), nullptr);
}

// ---- per-shard statistics merge --------------------------------------------

TEST(ShardedGraphTest, MergedEdgeStatsMatchesUnshardedFieldByField) {
  PropertyGraph graph = GenerateYago({.persons = 60, .seed = 9});
  GraphStatistics reference(graph);
  for (int shards : {2, 4}) {
    for (shard::ShardPolicy policy :
         {shard::ShardPolicy::kHash, shard::ShardPolicy::kRange}) {
      shard::ShardSpec spec;
      spec.shards = shards;
      spec.policy = policy;
      auto sharded = shard::ShardedGraph::Build(graph, spec, nullptr);
      ASSERT_NE(sharded, nullptr);
      for (const std::string& label : graph.edge_label_names()) {
        SCOPED_TRACE(label + " K=" + std::to_string(shards) + " policy=" +
                     shard::ShardPolicyName(policy));
        const EdgeLabelStats& expected = reference.EdgeFor(label);
        EdgeLabelStats merged = sharded->MergedEdgeStats(label);
        EXPECT_EQ(merged.rows, expected.rows);
        EXPECT_EQ(merged.distinct_sources, expected.distinct_sources);
        EXPECT_EQ(merged.distinct_targets, expected.distinct_targets);
        EXPECT_DOUBLE_EQ(merged.avg_out_degree, expected.avg_out_degree);
        EXPECT_DOUBLE_EQ(merged.avg_in_degree, expected.avg_in_degree);
        EXPECT_EQ(merged.source_label_bound, expected.source_label_bound);
        EXPECT_EQ(merged.target_label_bound, expected.target_label_bound);
        EXPECT_DOUBLE_EQ(merged.closure_bound, expected.closure_bound);
        EXPECT_EQ(merged.src_labels, expected.src_labels);
        EXPECT_EQ(merged.tgt_labels, expected.tgt_labels);
        EXPECT_EQ(merged.label_pairs, expected.label_pairs);
      }
    }
  }
}

}  // namespace
}  // namespace gqopt
